#ifndef OIJ_COL_SWEEP_MERGE_H_
#define OIJ_COL_SWEEP_MERGE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "col/column_batch.h"
#include "col/vector_agg.h"
#include "common/types.h"
#include "skiplist/time_travel_index.h"

namespace oij::col {

/// SweepMerge — the boundary-location leg of the columnar batch kernels
/// (DESIGN.md §5h), the Piatov-style sweep the paper's cache analysis
/// motivates: the index is descended *once per key-group* (the SeekGE
/// inside the gather), after which every per-base window boundary is
/// found by advancing two monotone cursors over the staged, ts-sorted
/// probe columns — no further O(log) descents, no pointer chasing.

/// Half-open slice [lo, hi) of a ProbeColumns pair: the probes inside
/// one base tuple's window.
struct BaseSlice {
  uint32_t lo = 0;
  uint32_t hi = 0;
};

/// Computes the window slice of each base in a ts-sorted run against
/// ts-sorted probe columns. Windows are [ts - window.pre, ts +
/// window.fol], both ends inclusive, exactly matching
/// TimeTravelIndex::ForEachInRange / the scalar filter. Because base ts
/// are non-decreasing, both boundaries advance monotonically: total cost
/// O(num_bases + num_probes) per group.
void ComputeWindowSlices(const Timestamp* base_ts, size_t num_bases,
                         IntervalWindow window, const Timestamp* probe_ts,
                         size_t num_probes, BaseSlice* out);

/// Gathers every tuple of `key` with ts in [lo, hi] out of one
/// time-travel index into contiguous probe columns, prefetching each
/// successor node while the current one is copied (the nodes live on
/// arena slabs under pooled_alloc, so the walk streams over few lines).
/// `touch(tuple)` runs per visited tuple (cache-sim hook). Returns the
/// number gathered. Readers must hold an EpochGuard if the index is
/// shared, but only for the duration of this call — once gathered, the
/// batch is decoupled from index memory.
template <typename Touch>
size_t GatherRange(const TimeTravelIndex& index, Key key, Timestamp lo,
                   Timestamp hi, ProbeColumns* out, Touch&& touch) {
  TimeTravelIndex::SecondLayer* layer = index.FindLayer(key);
  if (layer == nullptr) return 0;
  size_t gathered = 0;
  for (auto it = layer->SeekGE(lo); it.Valid() && it.key() <= hi;
       it.Next()) {
    it.PrefetchSuccessor();
    const Tuple& t = it.value();
    touch(t);
    out->Append(t.ts, t.payload);
    ++gathered;
  }
  return gathered;
}

}  // namespace oij::col

#endif  // OIJ_COL_SWEEP_MERGE_H_
