#include "col/sweep_merge.h"

namespace oij::col {

void ComputeWindowSlices(const Timestamp* base_ts, size_t num_bases,
                         IntervalWindow window, const Timestamp* probe_ts,
                         size_t num_probes, BaseSlice* out) {
  uint32_t lo = 0;
  uint32_t hi = 0;
  for (size_t i = 0; i < num_bases; ++i) {
    const Timestamp start = window.start_for(base_ts[i]);
    const Timestamp end = window.end_for(base_ts[i]);
    while (lo < num_probes && probe_ts[lo] < start) ++lo;
    if (hi < lo) hi = lo;
    while (hi < num_probes && probe_ts[hi] <= end) ++hi;
    out[i].lo = lo;
    out[i].hi = hi;
  }
}

}  // namespace oij::col
