#include "col/column_batch.h"

#include <algorithm>
#include <numeric>

namespace oij::col {

size_t ColumnarBatchStage::SortByKey() {
  order_.resize(ts_.size());
  std::iota(order_.begin(), order_.end(), 0u);
  // Stable: append order is pop order (ts non-decreasing), so each
  // key-group comes out ts-sorted without comparing timestamps.
  std::stable_sort(order_.begin(), order_.end(),
                   [this](uint32_t a, uint32_t b) {
                     return key_[a] < key_[b];
                   });
  size_t groups = 0;
  for (size_t i = 0; i < order_.size(); ++i) {
    if (i == 0 || key_[order_[i]] != key_[order_[i - 1]]) ++groups;
  }
  return groups;
}

void ProbeColumns::EnsureSorted() {
  if (sorted_ || ts_.size() < 2) {
    sorted_ = true;
    return;
  }
  const size_t n = ts_.size();
  scratch_order_.resize(n);
  std::iota(scratch_order_.begin(), scratch_order_.end(), 0u);
  std::stable_sort(scratch_order_.begin(), scratch_order_.end(),
                   [this](uint32_t a, uint32_t b) {
                     return ts_[a] < ts_[b];
                   });
  scratch_ts_.resize(n);
  scratch_payload_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    scratch_ts_[i] = ts_[scratch_order_[i]];
    scratch_payload_[i] = payload_[scratch_order_[i]];
  }
  std::copy(scratch_ts_.begin(), scratch_ts_.end(), ts_.data());
  std::copy(scratch_payload_.begin(), scratch_payload_.end(),
            payload_.data());
  sorted_ = true;
}

}  // namespace oij::col
