#include "col/vector_agg.h"

#include <limits>

#if !defined(OIJ_PORTABLE_KERNELS) && \
    (defined(__x86_64__) || defined(__AVX2__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define OIJ_COL_HAVE_AVX2 1
#include <immintrin.h>
#endif

namespace oij::col {

namespace {

/// Folds the tail (n % 4 elements) into an already lane-reduced result.
/// Shared by both bodies so their operation order stays identical.
inline void FoldTail(const double* v, size_t from, size_t n, SliceAgg* agg) {
  for (size_t i = from; i < n; ++i) {
    const double x = v[i];
    agg->sum += x;
    if (x < agg->min) agg->min = x;
    if (x > agg->max) agg->max = x;
  }
}

}  // namespace

SliceAgg AggregateSlicePortable(const double* v, size_t n) {
  SliceAgg agg;
  agg.count = n;
  if (n == 0) return agg;
  agg.min = std::numeric_limits<double>::infinity();
  agg.max = -std::numeric_limits<double>::infinity();
  const size_t body = n & ~size_t{3};
  if (body != 0) {
    // Four virtual lanes, exactly mirroring one AVX2 register.
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    double mn0 = agg.min, mn1 = agg.min, mn2 = agg.min, mn3 = agg.min;
    double mx0 = agg.max, mx1 = agg.max, mx2 = agg.max, mx3 = agg.max;
    for (size_t i = 0; i < body; i += 4) {
      const double a = v[i], b = v[i + 1], c = v[i + 2], d = v[i + 3];
      s0 += a;
      s1 += b;
      s2 += c;
      s3 += d;
      if (a < mn0) mn0 = a;
      if (b < mn1) mn1 = b;
      if (c < mn2) mn2 = c;
      if (d < mn3) mn3 = d;
      if (a > mx0) mx0 = a;
      if (b > mx1) mx1 = b;
      if (c > mx2) mx2 = c;
      if (d > mx3) mx3 = d;
    }
    // Lane reduction in the AVX2 extract order: low128 + high128 gives
    // {l0+l2, l1+l3}; then element 0 + element 1.
    agg.sum = (s0 + s2) + (s1 + s3);
    agg.min = mn0;
    if (mn1 < agg.min) agg.min = mn1;
    if (mn2 < agg.min) agg.min = mn2;
    if (mn3 < agg.min) agg.min = mn3;
    agg.max = mx0;
    if (mx1 > agg.max) agg.max = mx1;
    if (mx2 > agg.max) agg.max = mx2;
    if (mx3 > agg.max) agg.max = mx3;
  }
  FoldTail(v, body, n, &agg);
  return agg;
}

#ifdef OIJ_COL_HAVE_AVX2

__attribute__((target("avx2"))) static SliceAgg AggregateSliceAvx2(
    const double* v, size_t n) {
  SliceAgg agg;
  agg.count = n;
  if (n == 0) return agg;
  agg.min = std::numeric_limits<double>::infinity();
  agg.max = -std::numeric_limits<double>::infinity();
  const size_t body = n & ~size_t{3};
  if (body != 0) {
    __m256d vsum = _mm256_setzero_pd();
    __m256d vmin = _mm256_set1_pd(agg.min);
    __m256d vmax = _mm256_set1_pd(agg.max);
    for (size_t i = 0; i < body; i += 4) {
      const __m256d x = _mm256_loadu_pd(v + i);
      vsum = _mm256_add_pd(vsum, x);
      vmin = _mm256_min_pd(vmin, x);
      vmax = _mm256_max_pd(vmax, x);
    }
    const __m128d slo = _mm256_castpd256_pd128(vsum);   // {l0, l1}
    const __m128d shi = _mm256_extractf128_pd(vsum, 1);  // {l2, l3}
    const __m128d spair = _mm_add_pd(slo, shi);          // {l0+l2, l1+l3}
    agg.sum = _mm_cvtsd_f64(spair) +
              _mm_cvtsd_f64(_mm_unpackhi_pd(spair, spair));
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, vmin);
    agg.min = lanes[0];
    if (lanes[1] < agg.min) agg.min = lanes[1];
    if (lanes[2] < agg.min) agg.min = lanes[2];
    if (lanes[3] < agg.min) agg.min = lanes[3];
    _mm256_store_pd(lanes, vmax);
    agg.max = lanes[0];
    if (lanes[1] > agg.max) agg.max = lanes[1];
    if (lanes[2] > agg.max) agg.max = lanes[2];
    if (lanes[3] > agg.max) agg.max = lanes[3];
  }
  FoldTail(v, body, n, &agg);
  return agg;
}

static bool DetectAvx2() {
#if defined(__AVX2__)
  return true;  // whole TU targets AVX2 already
#else
  return __builtin_cpu_supports("avx2");
#endif
}

bool SimdActive() {
  static const bool have = DetectAvx2();
  return have;
}

SliceAgg AggregateSlice(const double* v, size_t n) {
  if (SimdActive()) return AggregateSliceAvx2(v, n);
  return AggregateSlicePortable(v, n);
}

#else  // !OIJ_COL_HAVE_AVX2

bool SimdActive() { return false; }

SliceAgg AggregateSlice(const double* v, size_t n) {
  return AggregateSlicePortable(v, n);
}

#endif  // OIJ_COL_HAVE_AVX2

void PrefixSums(const double* v, size_t n, double* out) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    out[i] = acc;
    acc += v[i];
  }
  out[n] = acc;
}

}  // namespace oij::col
