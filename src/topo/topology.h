#ifndef OIJ_TOPO_TOPOLOGY_H_
#define OIJ_TOPO_TOPOLOGY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace oij {

/// NUMA topology detection and joiner placement (DESIGN.md §5i).
///
/// The engines treat all cores as one flat pool unless this layer says
/// otherwise: joiner threads float, slabs land wherever first touch puts
/// them, and the dynamic balanced scheduler (paper Alg. 3) replicates hot
/// partitions across sockets. On multi-socket machines cross-socket
/// traffic — not core count — is what caps ordered stream joins (Prasaad
/// et al., PAPERS.md), so placement groups joiners into socket-sized
/// teams, pins them, binds their arenas node-locally, and biases
/// replication toward same-socket targets.
///
/// Detection reads `node*/cpulist` under a sysfs-style root directory —
/// `/sys/devices/system/node` on a real machine, or the directory named
/// by the `OIJ_FAKE_SYSFS` environment variable (tests, forced-topology
/// CI legs). Real detection intersects each node's CPU list with the
/// process cpuset (`sched_getaffinity`), so a restrictive container
/// cpuset shrinks or drops nodes; a fake root defines the whole machine
/// and skips the intersection. Any parse failure degrades to a
/// single-node fallback covering every allowed CPU — detection can make
/// placement a no-op but never an error.

/// How EngineOptions::numa drives placement.
enum class NumaMode : uint8_t {
  kAuto = 0,  ///< pin + bind when >1 node is detected; no-op otherwise
  kOff,       ///< never pin or bind (flat pool, the pre-topology behavior)
};

std::string_view NumaModeName(NumaMode mode);
Status NumaModeFromName(std::string_view name, NumaMode* out);

/// NUMA placement knobs carried inside EngineOptions.
struct NumaOptions {
  NumaMode mode = NumaMode::kAuto;

  /// Explicit joiner->cpu map (operator override / interleave benches).
  /// When non-empty it must have one entry per joiner (Validate checks);
  /// an entry of -1 leaves that joiner unpinned. An explicit map forces
  /// placement active even on a single-node machine.
  std::vector<int> explicit_cpus;
};

/// One NUMA node: its OS id and the usable CPUs on it (sorted).
struct TopologyNode {
  int id = 0;
  std::vector<int> cpus;
};

class Topology {
 public:
  /// Detects the machine: sysfs root from OIJ_FAKE_SYSFS when set (the
  /// fake tree defines the whole machine), `/sys/devices/system/node`
  /// intersected with the process cpuset otherwise.
  static Topology Detect();

  /// Injectable detection (tests): parses `<root>/node*/cpulist`,
  /// keeping only CPUs in `allowed_cpus` (empty = no restriction).
  /// Nodes whose CPU list empties out (offline / outside the cpuset)
  /// are dropped; malformed files or an empty result fall back to one
  /// node holding every allowed CPU.
  static Topology DetectFrom(const std::string& root,
                             const std::vector<int>& allowed_cpus);

  /// The explicit flat fallback: one node, CPUs 0..num_cpus-1.
  static Topology SingleNode(int num_cpus);

  const std::vector<TopologyNode>& nodes() const { return nodes_; }
  size_t num_nodes() const { return nodes_.size(); }
  int num_cpus() const;
  bool single_node() const { return nodes_.size() <= 1; }

  /// Node *ordinal* (index into nodes()) owning `cpu`; -1 when unknown.
  int NodeOfCpu(int cpu) const;

  /// Relative distance hint between node ordinals (`node*/distance`,
  /// ACPI SLIT units: 10 = local). 0 when the hint was unavailable.
  int Distance(int a, int b) const;

  /// True when detection failed and the single-node fallback was used.
  bool fallback() const { return fallback_; }

 private:
  std::vector<TopologyNode> nodes_;
  std::vector<std::vector<int>> distance_;  ///< [ordinal][ordinal], may be empty
  bool fallback_ = false;
};

/// Parses a kernel cpulist ("0,2,4-6") into sorted unique CPU ids.
Status ParseCpuList(std::string_view text, std::vector<int>* out);

/// CPUs this process may run on (sched_getaffinity); falls back to
/// 0..NumCpus()-1 when the syscall is unavailable.
std::vector<int> CurrentAllowedCpus();

/// The resolved per-joiner placement an engine runs with.
struct PlacementPlan {
  /// False = placement is a complete no-op (numa off, or auto on a
  /// single-node machine): no pinning, no memory binding, flat flush
  /// order, and the scheduler sees no topology.
  bool active = false;

  std::vector<int> joiner_cpu;        ///< per joiner; -1 = leave unpinned
  std::vector<uint32_t> joiner_node;  ///< per joiner: node ordinal
  std::vector<int> node_ids;          ///< ordinal -> OS node id (for mbind)
  uint32_t num_nodes = 1;

  /// Joiner ids grouped by node ordinal — the router flushes staged
  /// batches in this order so one socket's rings are filled back-to-back
  /// (per-queue FIFO is the only ordering contract, so regrouping
  /// across joiners is semantics-free).
  std::vector<uint32_t> flush_order;

  /// CPU for auxiliary threads (SplitJoin's collector): first CPU of the
  /// first node, or -1 when inactive.
  int aux_cpu = -1;

  uint32_t NodeOfJoiner(uint32_t joiner) const {
    return joiner < joiner_node.size() ? joiner_node[joiner] : 0;
  }
  int OsNodeOfJoiner(uint32_t joiner) const {
    const uint32_t ord = NodeOfJoiner(joiner);
    return ord < node_ids.size() ? node_ids[ord] : -1;
  }
};

/// Assigns joiners to socket-sized teams: contiguous joiner ranges per
/// node, sized proportionally to each node's usable core count, CPUs
/// round-robined within the node. `numa.explicit_cpus` overrides the
/// topology-derived map; `kOff` (or auto on a single node) yields an
/// inactive plan.
PlacementPlan PlanPlacement(const Topology& topo, uint32_t num_joiners,
                            const NumaOptions& numa);

/// Best-effort `mbind(MPOL_PREFERRED)` of the pages spanning
/// [addr, addr+len) to OS node `node`. Returns false — never an error —
/// when the syscall is unavailable, the node is invalid, or the kernel
/// refuses; the caller then relies on first-touch from the pinned
/// thread, which lands the pages on the same node anyway.
bool TryBindMemoryToNode(void* addr, size_t len, int node);

}  // namespace oij

#endif  // OIJ_TOPO_TOPOLOGY_H_
