#include "topo/topology.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <sstream>
#include <sys/stat.h>

#if defined(__linux__)
#include <sched.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "common/thread_util.h"

namespace oij {

std::string_view NumaModeName(NumaMode mode) {
  switch (mode) {
    case NumaMode::kAuto:
      return "auto";
    case NumaMode::kOff:
      return "off";
  }
  return "unknown";
}

Status NumaModeFromName(std::string_view name, NumaMode* out) {
  if (name == "auto") {
    *out = NumaMode::kAuto;
    return Status::OK();
  }
  if (name == "off") {
    *out = NumaMode::kOff;
    return Status::OK();
  }
  return Status::InvalidArgument("numa mode must be auto or off, got '" +
                                 std::string(name) + "'");
}

Status ParseCpuList(std::string_view text, std::vector<int>* out) {
  out->clear();
  size_t pos = 0;
  const auto skip_ws = [&] {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  };
  const auto parse_int = [&](int* value) -> bool {
    skip_ws();
    if (pos >= text.size() ||
        !std::isdigit(static_cast<unsigned char>(text[pos]))) {
      return false;
    }
    long v = 0;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos]))) {
      v = v * 10 + (text[pos] - '0');
      if (v > 1'000'000) return false;  // no machine has a million CPUs
      ++pos;
    }
    *value = static_cast<int>(v);
    return true;
  };

  skip_ws();
  while (pos < text.size()) {
    int lo = 0;
    if (!parse_int(&lo)) {
      return Status::InvalidArgument("malformed cpulist: '" +
                                     std::string(text) + "'");
    }
    int hi = lo;
    skip_ws();
    if (pos < text.size() && text[pos] == '-') {
      ++pos;
      if (!parse_int(&hi) || hi < lo) {
        return Status::InvalidArgument("malformed cpulist range: '" +
                                       std::string(text) + "'");
      }
      if (hi - lo > 1'000'000) {
        return Status::InvalidArgument("implausible cpulist range: '" +
                                       std::string(text) + "'");
      }
    }
    for (int c = lo; c <= hi; ++c) out->push_back(c);
    skip_ws();
    if (pos >= text.size()) break;
    if (text[pos] != ',') {
      return Status::InvalidArgument("malformed cpulist separator: '" +
                                     std::string(text) + "'");
    }
    ++pos;
    skip_ws();
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
  return Status::OK();
}

std::vector<int> CurrentAllowedCpus() {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    std::vector<int> cpus;
    for (int c = 0; c < CPU_SETSIZE; ++c) {
      if (CPU_ISSET(c, &set)) cpus.push_back(c);
    }
    if (!cpus.empty()) return cpus;
  }
#endif
  std::vector<int> cpus(static_cast<size_t>(std::max(1, NumCpus())));
  std::iota(cpus.begin(), cpus.end(), 0);
  return cpus;
}

namespace {

bool ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in.is_open()) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return !in.bad();
}

bool DirExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

/// Node ids present under `root`: the `online` cpulist-format file when
/// it parses, a directory probe otherwise (node ids may be sparse).
std::vector<int> CandidateNodeIds(const std::string& root) {
  std::string online;
  if (ReadFileToString(root + "/online", &online)) {
    std::vector<int> ids;
    if (ParseCpuList(online, &ids).ok() && !ids.empty()) return ids;
  }
  std::vector<int> ids;
  for (int i = 0; i < 256; ++i) {
    if (DirExists(root + "/node" + std::to_string(i))) ids.push_back(i);
  }
  return ids;
}

}  // namespace

Topology Topology::SingleNode(int num_cpus) {
  Topology t;
  TopologyNode node;
  node.id = 0;
  node.cpus.resize(static_cast<size_t>(std::max(1, num_cpus)));
  std::iota(node.cpus.begin(), node.cpus.end(), 0);
  t.nodes_.push_back(std::move(node));
  return t;
}

Topology Topology::Detect() {
  const char* fake = std::getenv("OIJ_FAKE_SYSFS");
  if (fake != nullptr && fake[0] != '\0') {
    // A fake tree defines the whole machine — no cpuset intersection, so
    // a test's 2-node topology survives a 1-CPU host.
    return DetectFrom(fake, {});
  }
  return DetectFrom("/sys/devices/system/node", CurrentAllowedCpus());
}

Topology Topology::DetectFrom(const std::string& root,
                              const std::vector<int>& allowed_cpus) {
  const auto fallback = [&]() {
    Topology t;
    TopologyNode node;
    node.id = 0;
    if (allowed_cpus.empty()) {
      node.cpus.resize(static_cast<size_t>(std::max(1, NumCpus())));
      std::iota(node.cpus.begin(), node.cpus.end(), 0);
    } else {
      node.cpus = allowed_cpus;
    }
    t.nodes_.push_back(std::move(node));
    t.fallback_ = true;
    return t;
  };
  if (root.empty()) return fallback();

  const std::vector<int> ids = CandidateNodeIds(root);
  if (ids.empty()) return fallback();

  std::vector<TopologyNode> parsed;          // before cpuset filtering
  std::vector<std::vector<int>> distances;   // per parsed node, may be empty
  for (int id : ids) {
    const std::string dir = root + "/node" + std::to_string(id);
    std::string cpulist;
    if (!ReadFileToString(dir + "/cpulist", &cpulist)) return fallback();
    TopologyNode node;
    node.id = id;
    if (!ParseCpuList(cpulist, &node.cpus).ok()) return fallback();

    std::vector<int> dist;
    std::string dist_text;
    if (ReadFileToString(dir + "/distance", &dist_text)) {
      std::istringstream in(dist_text);
      int d;
      while (in >> d) dist.push_back(d);
    }
    parsed.push_back(std::move(node));
    distances.push_back(std::move(dist));
  }

  Topology t;
  std::vector<size_t> kept;  // index into `parsed` per kept node
  for (size_t i = 0; i < parsed.size(); ++i) {
    TopologyNode node = parsed[i];
    if (!allowed_cpus.empty()) {
      std::vector<int> usable;
      std::set_intersection(node.cpus.begin(), node.cpus.end(),
                            allowed_cpus.begin(), allowed_cpus.end(),
                            std::back_inserter(usable));
      node.cpus = std::move(usable);
    }
    if (node.cpus.empty()) continue;  // offline / outside the cpuset
    kept.push_back(i);
    t.nodes_.push_back(std::move(node));
  }
  if (t.nodes_.empty()) return fallback();

  // Distance hints are optional: keep them only when every kept node's
  // file covers every kept position (entries follow candidate order).
  bool have_distance = true;
  for (size_t a = 0; a < kept.size() && have_distance; ++a) {
    for (size_t b = 0; b < kept.size(); ++b) {
      if (kept[b] >= distances[kept[a]].size()) {
        have_distance = false;
        break;
      }
    }
  }
  if (have_distance) {
    t.distance_.resize(kept.size());
    for (size_t a = 0; a < kept.size(); ++a) {
      t.distance_[a].resize(kept.size());
      for (size_t b = 0; b < kept.size(); ++b) {
        t.distance_[a][b] = distances[kept[a]][kept[b]];
      }
    }
  }
  return t;
}

int Topology::num_cpus() const {
  int n = 0;
  for (const TopologyNode& node : nodes_) {
    n += static_cast<int>(node.cpus.size());
  }
  return n;
}

int Topology::NodeOfCpu(int cpu) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (std::binary_search(nodes_[i].cpus.begin(), nodes_[i].cpus.end(),
                           cpu)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int Topology::Distance(int a, int b) const {
  if (a < 0 || b < 0 || static_cast<size_t>(a) >= distance_.size() ||
      static_cast<size_t>(b) >= distance_.size()) {
    return 0;
  }
  return distance_[static_cast<size_t>(a)][static_cast<size_t>(b)];
}

PlacementPlan PlanPlacement(const Topology& topo, uint32_t num_joiners,
                            const NumaOptions& numa) {
  PlacementPlan plan;
  plan.joiner_cpu.assign(num_joiners, -1);
  plan.joiner_node.assign(num_joiners, 0);
  plan.flush_order.resize(num_joiners);
  std::iota(plan.flush_order.begin(), plan.flush_order.end(), 0u);
  for (const TopologyNode& node : topo.nodes()) {
    plan.node_ids.push_back(node.id);
  }
  if (plan.node_ids.empty()) plan.node_ids.push_back(0);

  if (numa.mode == NumaMode::kOff) return plan;

  if (!numa.explicit_cpus.empty()) {
    // Operator override: trust the map (Validate bounds it), derive node
    // ordinals from the topology so stats grouping and the scheduler
    // still see sockets. Forces placement active even on one node.
    plan.active = true;
    plan.num_nodes =
        static_cast<uint32_t>(std::max<size_t>(1, topo.num_nodes()));
    const size_t n =
        std::min<size_t>(num_joiners, numa.explicit_cpus.size());
    for (size_t j = 0; j < n; ++j) {
      const int cpu = numa.explicit_cpus[j];
      plan.joiner_cpu[j] = cpu;
      const int ord = cpu >= 0 ? topo.NodeOfCpu(cpu) : -1;
      plan.joiner_node[j] = ord >= 0 ? static_cast<uint32_t>(ord) : 0;
      if (plan.aux_cpu < 0 && cpu >= 0) plan.aux_cpu = cpu;
    }
    std::stable_sort(plan.flush_order.begin(), plan.flush_order.end(),
                     [&](uint32_t a, uint32_t b) {
                       return plan.joiner_node[a] < plan.joiner_node[b];
                     });
    return plan;
  }

  // Auto mode is a strict no-op on a flat machine: CI boxes and laptops
  // must see zero behavior change from the default.
  if (topo.single_node()) return plan;

  plan.active = true;
  plan.num_nodes = static_cast<uint32_t>(topo.num_nodes());

  // Socket-sized teams: node ordinal i gets a joiner count proportional
  // to its usable core share (largest-remainder apportionment, ties to
  // the bigger node then the lower ordinal — deterministic), laid out as
  // a contiguous joiner range so per-socket staging flushes are just the
  // identity order.
  const double total = static_cast<double>(std::max(1, topo.num_cpus()));
  const size_t nn = topo.num_nodes();
  std::vector<uint32_t> count(nn, 0);
  std::vector<double> frac(nn, 0.0);
  uint32_t assigned = 0;
  for (size_t i = 0; i < nn; ++i) {
    const double exact =
        num_joiners * static_cast<double>(topo.nodes()[i].cpus.size()) /
        total;
    count[i] = static_cast<uint32_t>(exact);
    frac[i] = exact - static_cast<double>(count[i]);
    assigned += count[i];
  }
  std::vector<size_t> order(nn);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (frac[a] != frac[b]) return frac[a] > frac[b];
    if (topo.nodes()[a].cpus.size() != topo.nodes()[b].cpus.size()) {
      return topo.nodes()[a].cpus.size() > topo.nodes()[b].cpus.size();
    }
    return a < b;
  });
  for (size_t k = 0; assigned < num_joiners; k = (k + 1) % nn) {
    ++count[order[k]];
    ++assigned;
  }

  uint32_t next = 0;
  for (size_t i = 0; i < nn; ++i) {
    const std::vector<int>& cpus = topo.nodes()[i].cpus;
    for (uint32_t k = 0; k < count[i]; ++k) {
      plan.joiner_node[next] = static_cast<uint32_t>(i);
      plan.joiner_cpu[next] = cpus[k % cpus.size()];
      ++next;
    }
  }
  plan.aux_cpu = topo.nodes()[0].cpus[0];
  return plan;
}

bool TryBindMemoryToNode(void* addr, size_t len, int node) {
#if defined(__linux__) && defined(SYS_mbind)
  if (addr == nullptr || len == 0 || node < 0) return false;
  constexpr unsigned long kMpolPreferred = 1;  // degrade, don't fail, OOM
  constexpr size_t kMaskWords = 16;            // 1024 nodes
  if (node >= static_cast<int>(kMaskWords * sizeof(unsigned long) * 8)) {
    return false;
  }
  unsigned long mask[kMaskWords] = {0};
  const size_t bits = sizeof(unsigned long) * 8;
  mask[static_cast<size_t>(node) / bits] |=
      1UL << (static_cast<size_t>(node) % bits);

  const long page = ::sysconf(_SC_PAGESIZE);
  if (page <= 0) return false;
  const uintptr_t mask_down = ~static_cast<uintptr_t>(page - 1);
  const uintptr_t start = reinterpret_cast<uintptr_t>(addr) & mask_down;
  const uintptr_t end = reinterpret_cast<uintptr_t>(addr) + len;
  const size_t span =
      ((end - start) + static_cast<size_t>(page) - 1) &
      static_cast<size_t>(mask_down);
  return ::syscall(SYS_mbind, start, span, kMpolPreferred, mask,
                   kMaskWords * bits + 1, 0UL) == 0;
#else
  (void)addr;
  (void)len;
  (void)node;
  return false;
#endif
}

}  // namespace oij
