#include "row/schema.h"

#include <unordered_set>

namespace oij {

std::string_view FieldTypeName(FieldType type) {
  switch (type) {
    case FieldType::kInt64:
      return "int64";
    case FieldType::kDouble:
      return "double";
    case FieldType::kTimestamp:
      return "timestamp";
  }
  return "?";
}

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

int Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status Schema::Validate() const {
  if (fields_.empty()) {
    return Status::InvalidArgument("schema has no columns");
  }
  std::unordered_set<std::string> seen;
  for (const Field& f : fields_) {
    if (f.name.empty()) {
      return Status::InvalidArgument("schema has an unnamed column");
    }
    if (!seen.insert(f.name).second) {
      return Status::InvalidArgument("duplicate column name: " + f.name);
    }
  }
  return Status::OK();
}

}  // namespace oij
