#ifndef OIJ_ROW_STREAM_BINDING_H_
#define OIJ_ROW_STREAM_BINDING_H_

#include "common/status.h"
#include "row/row.h"
#include "row/schema.h"
#include "sql/ast.h"

namespace oij {

/// Resolved column positions of one stream for an OIJ query: where in a
/// row the event timestamp, the join key, and the aggregated value live.
struct StreamBinding {
  const Schema* schema = nullptr;
  int ts_index = -1;
  int key_index = -1;
  int value_index = -1;  ///< -1 for the base stream (not aggregated)
};

/// Resolves a query's ORDER BY / PARTITION BY / aggregate columns against
/// one stream's schema. `value_column` may be empty (base stream).
/// Checks that the timestamp column is kTimestamp or kInt64, the key
/// column kInt64, and the value column kDouble or kInt64.
Status ResolveBinding(const Schema& schema, std::string_view ts_column,
                      std::string_view key_column,
                      std::string_view value_column, StreamBinding* out);

/// Resolves both sides of a parsed window-union query: the probe stream
/// (UNION table) must expose the aggregated column; both must expose the
/// partition and order columns.
Status BindQueryToSchemas(const ParsedQuery& parsed,
                          const Schema& base_schema,
                          const Schema& probe_schema, StreamBinding* base,
                          StreamBinding* probe);

/// Converts one packed row into the engine tuple using a binding.
/// Doubles are truncated toward zero when the key column is typed
/// kDouble upstream — ResolveBinding rejects that, so this stays exact.
Tuple RowToTuple(const StreamBinding& binding, const RowView& row);

}  // namespace oij

#endif  // OIJ_ROW_STREAM_BINDING_H_
