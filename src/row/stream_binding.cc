#include "row/stream_binding.h"

namespace oij {

namespace {

Status CheckColumn(const Schema& schema, std::string_view name,
                   std::initializer_list<FieldType> allowed, int* index) {
  *index = schema.IndexOf(name);
  if (*index < 0) {
    return Status::NotFound("column not in schema: " + std::string(name));
  }
  const FieldType type = schema.field(static_cast<size_t>(*index)).type;
  for (FieldType t : allowed) {
    if (type == t) return Status::OK();
  }
  return Status::InvalidArgument(
      "column " + std::string(name) + " has type " +
      std::string(FieldTypeName(type)) + ", which this clause cannot use");
}

}  // namespace

Status ResolveBinding(const Schema& schema, std::string_view ts_column,
                      std::string_view key_column,
                      std::string_view value_column, StreamBinding* out) {
  Status s = schema.Validate();
  if (!s.ok()) return s;
  StreamBinding binding;
  binding.schema = &schema;
  s = CheckColumn(schema, ts_column,
                  {FieldType::kTimestamp, FieldType::kInt64},
                  &binding.ts_index);
  if (!s.ok()) return s;
  s = CheckColumn(schema, key_column, {FieldType::kInt64},
                  &binding.key_index);
  if (!s.ok()) return s;
  if (!value_column.empty()) {
    s = CheckColumn(schema, value_column,
                    {FieldType::kDouble, FieldType::kInt64},
                    &binding.value_index);
    if (!s.ok()) return s;
  }
  *out = binding;
  return Status::OK();
}

Status BindQueryToSchemas(const ParsedQuery& parsed,
                          const Schema& base_schema,
                          const Schema& probe_schema, StreamBinding* base,
                          StreamBinding* probe) {
  // The aggregated column lives in the probe (window-union) stream; the
  // base stream only anchors windows.
  Status s = ResolveBinding(base_schema, parsed.order_column,
                            parsed.partition_column, "", base);
  if (!s.ok()) {
    return Status::InvalidArgument("base stream " + parsed.base_table +
                                   ": " + s.ToString());
  }
  s = ResolveBinding(probe_schema, parsed.order_column,
                     parsed.partition_column, parsed.agg_column, probe);
  if (!s.ok()) {
    return Status::InvalidArgument("probe stream " + parsed.probe_table +
                                   ": " + s.ToString());
  }
  return Status::OK();
}

Tuple RowToTuple(const StreamBinding& binding, const RowView& row) {
  Tuple t;
  t.ts = row.GetTimestamp(binding.ts_index);
  t.key = static_cast<Key>(row.GetInt64(binding.key_index));
  if (binding.value_index >= 0) {
    const FieldType type =
        binding.schema->field(static_cast<size_t>(binding.value_index))
            .type;
    t.payload = type == FieldType::kDouble
                    ? row.GetDouble(binding.value_index)
                    : static_cast<double>(
                          row.GetInt64(binding.value_index));
  }
  return t;
}

}  // namespace oij
