#ifndef OIJ_ROW_ROW_H_
#define OIJ_ROW_ROW_H_

#include <cstring>
#include <vector>

#include "common/types.h"
#include "row/schema.h"

namespace oij {

/// Builds packed fixed-width rows (8 bytes per column, little-endian
/// in-memory representation). One builder is reused across rows.
class RowBuilder {
 public:
  explicit RowBuilder(const Schema* schema)
      : schema_(schema), buffer_(schema->row_bytes(), 0) {}

  RowBuilder& SetInt64(int index, int64_t value) {
    Store(index, static_cast<uint64_t>(value));
    return *this;
  }
  RowBuilder& SetDouble(int index, double value) {
    uint64_t bits;
    std::memcpy(&bits, &value, 8);
    Store(index, bits);
    return *this;
  }
  RowBuilder& SetTimestamp(int index, Timestamp value) {
    return SetInt64(index, value);
  }

  /// The packed row; valid until the next Set/Reset.
  const std::vector<uint8_t>& row() const { return buffer_; }

  void Reset() { std::fill(buffer_.begin(), buffer_.end(), 0); }

  const Schema* schema() const { return schema_; }

 private:
  void Store(int index, uint64_t bits) {
    std::memcpy(buffer_.data() + static_cast<size_t>(index) * 8, &bits, 8);
  }

  const Schema* schema_;
  std::vector<uint8_t> buffer_;
};

/// Read-only view over one packed row. Does not own the bytes.
class RowView {
 public:
  RowView(const Schema* schema, const uint8_t* data)
      : schema_(schema), data_(data) {}

  int64_t GetInt64(int index) const {
    return static_cast<int64_t>(Load(index));
  }
  double GetDouble(int index) const {
    const uint64_t bits = Load(index);
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }
  Timestamp GetTimestamp(int index) const { return GetInt64(index); }

  const Schema* schema() const { return schema_; }

 private:
  uint64_t Load(int index) const {
    uint64_t bits;
    std::memcpy(&bits, data_ + static_cast<size_t>(index) * 8, 8);
    return bits;
  }

  const Schema* schema_;
  const uint8_t* data_;
};

}  // namespace oij

#endif  // OIJ_ROW_ROW_H_
