#ifndef OIJ_ROW_SCHEMA_H_
#define OIJ_ROW_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace oij {

/// Column types of the row layer. All types are fixed-width (8 bytes), so
/// rows pack densely and field access is branch-free — the layout
/// OpenMLDB-style online feature stores favour for hot paths.
enum class FieldType : uint8_t {
  kInt64 = 0,
  kDouble,
  kTimestamp,  ///< event time, microseconds (int64 on the wire)
};

std::string_view FieldTypeName(FieldType type);

struct Field {
  std::string name;
  FieldType type = FieldType::kInt64;

  friend bool operator==(const Field&, const Field&) = default;
};

/// An ordered, named set of fixed-width columns describing one stream's
/// rows. The SQL binder resolves PARTITION BY / ORDER BY / aggregate
/// columns against schemas (see row/stream_binding.h).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  /// Column index of `name`, or -1.
  int IndexOf(std::string_view name) const;

  const Field& field(size_t i) const { return fields_[i]; }
  size_t num_fields() const { return fields_.size(); }

  /// Bytes per packed row (8 per field).
  size_t row_bytes() const { return fields_.size() * 8; }

  /// Non-empty, unique column names.
  Status Validate() const;

  friend bool operator==(const Schema&, const Schema&) = default;

 private:
  std::vector<Field> fields_;
};

}  // namespace oij

#endif  // OIJ_ROW_SCHEMA_H_
