#ifndef OIJ_ROW_COLUMNAR_H_
#define OIJ_ROW_COLUMNAR_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "row/row.h"
#include "row/schema.h"

namespace oij {

/// Columnar (SoA) counterpart of the packed row layout in row/row.h —
/// the layout the batch-join kernels (src/col/, DESIGN.md §5h) stage
/// into: one contiguous 8-byte-wide vector per schema field, so a batch
/// of N rows becomes `num_fields` cache-dense arrays instead of N
/// scattered row buffers.
///
/// The transpose is bit-exact in both directions: values are moved as
/// raw 64-bit patterns, so NaN payloads (including negative / signalling
/// patterns used as SQL-NULL stand-ins) and all-zero "null" rows survive
/// a round trip byte-for-byte. `row_test`/`col_batch_test` fuzz this
/// property over random schemas.
class ColumnarBlock {
 public:
  explicit ColumnarBlock(const Schema* schema)
      : schema_(schema), columns_(schema->num_fields()) {}

  /// Appends one packed row (schema()->row_bytes() bytes).
  void AppendRow(const uint8_t* row) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      uint64_t bits;
      std::memcpy(&bits, row + c * 8, 8);
      columns_[c].push_back(bits);
    }
    ++num_rows_;
  }

  void AppendRow(const RowView& view) {
    // RowView does not expose its byte pointer; go through the typed
    // getters, which are bit-preserving for int64/timestamp. Doubles are
    // re-encoded via the same memcpy the builder used.
    for (size_t c = 0; c < columns_.size(); ++c) {
      uint64_t bits;
      if (schema_->field(c).type == FieldType::kDouble) {
        const double v = view.GetDouble(static_cast<int>(c));
        std::memcpy(&bits, &v, 8);
      } else {
        bits = static_cast<uint64_t>(view.GetInt64(static_cast<int>(c)));
      }
      columns_[c].push_back(bits);
    }
    ++num_rows_;
  }

  /// Writes row `r` back into packed form (`out` must have
  /// schema()->row_bytes() bytes). Inverse of AppendRow, bit-exact.
  void MaterializeRow(size_t r, uint8_t* out) const {
    for (size_t c = 0; c < columns_.size(); ++c) {
      std::memcpy(out + c * 8, &columns_[c][r], 8);
    }
  }

  int64_t GetInt64(size_t col, size_t row) const {
    return static_cast<int64_t>(columns_[col][row]);
  }
  double GetDouble(size_t col, size_t row) const {
    double v;
    std::memcpy(&v, &columns_[col][row], 8);
    return v;
  }
  Timestamp GetTimestamp(size_t col, size_t row) const {
    return GetInt64(col, row);
  }

  /// Contiguous raw column `c` (num_rows() 64-bit patterns) — what the
  /// vectorized kernels iterate.
  const uint64_t* ColumnData(size_t c) const { return columns_[c].data(); }

  size_t num_rows() const { return num_rows_; }
  const Schema* schema() const { return schema_; }

  void Clear() {
    for (auto& col : columns_) col.clear();
    num_rows_ = 0;
  }

 private:
  const Schema* schema_;
  std::vector<std::vector<uint64_t>> columns_;
  size_t num_rows_ = 0;
};

}  // namespace oij

#endif  // OIJ_ROW_COLUMNAR_H_
