#include "core/pipeline.h"

namespace oij {

RunResult RunPipeline(JoinEngine* engine, WorkloadGenerator* generator,
                      const PipelineConfig& config) {
  return internal::DrivePipeline(engine, generator,
                                 generator->spec().pace_rate_per_sec,
                                 config);
}

}  // namespace oij
