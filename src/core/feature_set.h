#ifndef OIJ_CORE_FEATURE_SET_H_
#define OIJ_CORE_FEATURE_SET_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/query_spec.h"
#include "sql/ast.h"

namespace oij {

/// One output column of a feature set.
struct FeatureOutput {
  AggKind kind = AggKind::kSum;
  std::string column;  ///< aggregated payload column name
  std::string name;    ///< "sum(col2)" etc., for display
};

/// A multi-aggregate OIJ feature query — the common OpenMLDB shape where
/// several window aggregations share one window definition:
///
///   SELECT sum(amt), count(amt), max(amt) OVER w FROM S
///   WINDOW w AS (UNION R PARTITION BY k ORDER BY ts
///                ROWS_RANGE BETWEEN 1s PRECEDING AND CURRENT ROW);
///
/// One engine run computes all outputs: every join operation produces the
/// window's full statistics (sum/count/min/max) in JoinResult, and
/// ExtractFeature() projects each requested output from them.
///
/// Caveat: Scale-OIJ's *incremental* path only maintains the statistics
/// its running state covers (sum/count for Subtract-on-Evict; the single
/// requested extreme for Two-Stacks). RequiresFullState() tells callers
/// whether the output list needs min or max alongside other aggregates,
/// in which case incremental aggregation should be disabled (the engine
/// option) or the NaN outputs accepted.
struct FeatureSetSpec {
  QuerySpec query;  ///< query.agg is the first output's kind
  std::vector<FeatureOutput> outputs;

  /// True when the outputs need window statistics beyond what a single
  /// incremental state maintains (i.e. min/max mixed with anything else).
  bool RequiresFullState() const;
};

/// Parses and binds a (possibly multi-select) window-union query.
Status CompileFeatureSet(std::string_view sql, FeatureSetSpec* out,
                         ParsedQuery* parsed_out = nullptr);

/// Projects one output from a result's window statistics. Returns NaN
/// when the producing engine did not materialize that statistic (see
/// FeatureSetSpec) or the window was empty (SQL NULL stand-in).
double ExtractFeature(const JoinResult& result, AggKind kind);

}  // namespace oij

#endif  // OIJ_CORE_FEATURE_SET_H_
