#include "core/query_spec.h"

namespace oij {

std::string_view LatePolicyName(LatePolicy policy) {
  switch (policy) {
    case LatePolicy::kBestEffortJoin:
      return "best_effort_join";
    case LatePolicy::kDropAndCount:
      return "drop_and_count";
    case LatePolicy::kSideChannel:
      return "side_channel";
  }
  return "unknown";
}

Status LatePolicyFromName(std::string_view name, LatePolicy* out) {
  if (name == "best_effort_join") {
    *out = LatePolicy::kBestEffortJoin;
  } else if (name == "drop_and_count") {
    *out = LatePolicy::kDropAndCount;
  } else if (name == "side_channel") {
    *out = LatePolicy::kSideChannel;
  } else {
    return Status::ParseError("unknown late policy '" + std::string(name) +
                              "'");
  }
  return Status::OK();
}

std::string_view EmitModeName(EmitMode mode) {
  switch (mode) {
    case EmitMode::kEager:
      return "eager";
    case EmitMode::kWatermark:
      return "watermark";
  }
  return "unknown";
}

Status EmitModeFromName(std::string_view name, EmitMode* out) {
  if (name == "eager") {
    *out = EmitMode::kEager;
  } else if (name == "watermark") {
    *out = EmitMode::kWatermark;
  } else {
    return Status::ParseError("unknown emit mode '" + std::string(name) + "'");
  }
  return Status::OK();
}

Status QuerySpec::Validate() const {
  if (window.pre < 0 || window.fol < 0) {
    return Status::InvalidArgument("window offsets must be non-negative");
  }
  if (lateness_us < 0) {
    return Status::InvalidArgument("lateness must be non-negative");
  }
  return Status::OK();
}

}  // namespace oij
