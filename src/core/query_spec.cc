#include "core/query_spec.h"

namespace oij {

std::string_view LatePolicyName(LatePolicy policy) {
  switch (policy) {
    case LatePolicy::kBestEffortJoin:
      return "best_effort_join";
    case LatePolicy::kDropAndCount:
      return "drop_and_count";
    case LatePolicy::kSideChannel:
      return "side_channel";
  }
  return "unknown";
}

Status QuerySpec::Validate() const {
  if (window.pre < 0 || window.fol < 0) {
    return Status::InvalidArgument("window offsets must be non-negative");
  }
  if (lateness_us < 0) {
    return Status::InvalidArgument("lateness must be non-negative");
  }
  return Status::OK();
}

}  // namespace oij
