#include "core/query_spec.h"

namespace oij {

Status QuerySpec::Validate() const {
  if (window.pre < 0 || window.fol < 0) {
    return Status::InvalidArgument("window offsets must be non-negative");
  }
  if (lateness_us < 0) {
    return Status::InvalidArgument("lateness must be non-negative");
  }
  return Status::OK();
}

}  // namespace oij
