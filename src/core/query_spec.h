#ifndef OIJ_CORE_QUERY_SPEC_H_
#define OIJ_CORE_QUERY_SPEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "agg/aggregate.h"
#include "common/status.h"
#include "common/types.h"

namespace oij {

/// When a base tuple's aggregate is emitted.
enum class EmitMode : uint8_t {
  /// Join-on-arrival (Flink interval-join style, and what the paper's
  /// latency figures imply: Workload A has 1 s lateness yet 10 ms
  /// latencies). The base tuple joins against everything buffered so far;
  /// probe tuples that arrive later than the base tuple they match are
  /// missed. Exact when the probe stream is in order relative to base
  /// consumption; approximate under disorder.
  kEager = 0,
  /// Watermark-gated: a base tuple is finalized only once the watermark
  /// (max seen − lateness) passes its window end, so results are exact for
  /// any disorder within the lateness bound — the "100% accuracy" regime
  /// OpenMLDB applications require. Latency then includes the disorder
  /// wait.
  kWatermark,
};

/// What to do with a tuple that arrives after the watermark has already
/// passed its timestamp — i.e. the arrival violates the lateness bound
/// and the exactness guarantee no longer covers it.
enum class LatePolicy : uint8_t {
  /// Feed the tuple into the join anyway (seed behavior), but count it so
  /// the violation is observable. Results for already-finalized windows
  /// may still be missing the tuple; nothing is retracted.
  kBestEffortJoin = 0,
  /// Drop the tuple and count it. The surviving result set is exactly
  /// the reference join over the on-time subset of the input.
  kDropAndCount,
  /// Drop the tuple from the join but hand it to a LateSink side channel
  /// (dead-letter queue) for out-of-band reconciliation.
  kSideChannel,
};

std::string_view LatePolicyName(LatePolicy policy);

/// Parses a (case-sensitive, lower-case) late-policy name as produced by
/// LatePolicyName. Returns ParseError for unknown names.
Status LatePolicyFromName(std::string_view name, LatePolicy* out);

/// "eager" / "watermark".
std::string_view EmitModeName(EmitMode mode);

/// Parses an emit-mode name as produced by EmitModeName.
Status EmitModeFromName(std::string_view name, EmitMode* out);

/// The online interval join query (Definition 2): join base stream S with
/// probe stream R on key equality and relative window containment, then
/// aggregate per base tuple.
struct QuerySpec {
  /// (PRE, FOL) relative window in microseconds.
  IntervalWindow window{1000, 0};

  /// Lateness l in microseconds: max admissible disorder.
  Timestamp lateness_us = 100;

  AggKind agg = AggKind::kSum;

  EmitMode emit_mode = EmitMode::kEager;

  /// Handling of tuples that violate the lateness bound. The default
  /// preserves seed behavior (join them best-effort, but count).
  LatePolicy late_policy = LatePolicy::kBestEffortJoin;

  Status Validate() const;
};

}  // namespace oij

#endif  // OIJ_CORE_QUERY_SPEC_H_
