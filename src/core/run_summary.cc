#include "core/run_summary.h"

#include <cstdio>

namespace oij {

namespace {
std::string Format(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}
}  // namespace

std::string HumanRate(double per_second) {
  return HumanCount(per_second) + "/s";
}

std::string HumanCount(double count) {
  if (count >= 1e9) return Format("%.2fG", count / 1e9);
  if (count >= 1e6) return Format("%.2fM", count / 1e6);
  if (count >= 1e3) return Format("%.1fK", count / 1e3);
  return Format("%.0f", count);
}

std::string HumanDurationUs(double us) {
  if (us >= 1e6) return Format("%.2fs", us / 1e6);
  if (us >= 1e3) return Format("%.2fms", us / 1e3);
  return Format("%.0fus", us);
}

std::string SummarizeRun(const std::string& label, const RunResult& run) {
  const EngineStats& st = run.stats;
  std::string out;
  char buf[512];

  std::snprintf(buf, sizeof(buf),
                "[%s] %s tuples in %.2fs -> throughput %s\n", label.c_str(),
                HumanCount(static_cast<double>(run.tuples)).c_str(),
                run.elapsed_seconds, HumanRate(run.throughput_tps).c_str());
  out += buf;

  std::snprintf(
      buf, sizeof(buf),
      "  results=%s  latency p50=%s p90=%s p99=%s max=%s  <20ms=%.1f%%\n",
      HumanCount(static_cast<double>(st.results)).c_str(),
      HumanDurationUs(static_cast<double>(st.latency.Percentile(0.50)))
          .c_str(),
      HumanDurationUs(static_cast<double>(st.latency.Percentile(0.90)))
          .c_str(),
      HumanDurationUs(static_cast<double>(st.latency.Percentile(0.99)))
          .c_str(),
      HumanDurationUs(static_cast<double>(st.latency.max_us())).c_str(),
      st.latency.FractionBelow(20'000) * 100.0);
  out += buf;

  std::snprintf(
      buf, sizeof(buf),
      "  breakdown lookup=%.0f%% match=%.0f%% other=%.0f%%  "
      "effectiveness=%.3f  unbalancedness=%.3f  rebalances=%llu\n",
      st.breakdown.lookup_fraction() * 100.0,
      st.breakdown.match_fraction() * 100.0,
      st.breakdown.other_fraction() * 100.0, st.Effectiveness(),
      st.ActualUnbalancedness(),
      static_cast<unsigned long long>(st.rebalances));
  out += buf;

  // Memory management: only printed for pooled-alloc (arena) runs.
  if (st.mem.pooled) {
    std::snprintf(
        buf, sizeof(buf),
        "  memory pooled-alloc arena=%sB live_nodes=%s allocs=%s "
        "slab_recycles=%llu retired_backlog=%llu\n",
        HumanCount(static_cast<double>(st.mem.arena_reserved_bytes)).c_str(),
        HumanCount(static_cast<double>(st.mem.arena_live_nodes)).c_str(),
        HumanCount(static_cast<double>(st.mem.arena_allocations)).c_str(),
        static_cast<unsigned long long>(st.mem.arena_slab_recycles),
        static_cast<unsigned long long>(st.mem.ebr_retired_backlog));
    out += buf;
  }

  // Delivery & degradation: only printed when a run was not pristine.
  if (!st.health.ok() || st.late.tuples > 0 || st.overload_dropped > 0 ||
      !st.warnings.empty()) {
    std::snprintf(
        buf, sizeof(buf),
        "  degradation health=%s  late=%llu (dropped=%llu side=%llu "
        "joined=%llu)  overload_dropped=%llu shed=%llu\n",
        st.health.ok() ? "OK" : st.health.ToString().c_str(),
        static_cast<unsigned long long>(st.late.tuples),
        static_cast<unsigned long long>(st.late.dropped),
        static_cast<unsigned long long>(st.late.side_channel),
        static_cast<unsigned long long>(st.late.joined),
        static_cast<unsigned long long>(st.overload_dropped),
        static_cast<unsigned long long>(st.overload_shed));
    out += buf;
    for (const std::string& w : st.warnings) {
      out += "  warning: " + w + "\n";
    }
  }
  return out;
}

}  // namespace oij
