#ifndef OIJ_CORE_RUN_SUMMARY_H_
#define OIJ_CORE_RUN_SUMMARY_H_

#include <string>

#include "core/pipeline.h"

namespace oij {

/// "123.4K/s", "1.2M/s" — the unit the paper's throughput axes use.
std::string HumanRate(double per_second);

/// "1234", "1.2M" with K/M/G suffixes.
std::string HumanCount(double count);

/// Microseconds rendered as "x us" / "x.y ms" / "x.y s".
std::string HumanDurationUs(double us);

/// One text block per run: throughput, latency percentiles (p50/p90/p99,
/// max, fraction under the 20 ms SLA), time breakdown, effectiveness and
/// unbalancedness. The examples and ad-hoc tools print this.
std::string SummarizeRun(const std::string& label, const RunResult& run);

}  // namespace oij

#endif  // OIJ_CORE_RUN_SUMMARY_H_
