#ifndef OIJ_CORE_PIPELINE_H_
#define OIJ_CORE_PIPELINE_H_

#include <atomic>
#include <cstdint>

#include "join/engine.h"
#include "metrics/throughput.h"
#include "stream/disorder_estimator.h"
#include "stream/generator.h"

namespace oij {

/// Driver knobs: how often the source injects watermark punctuations.
/// Punctuations carry the watermark to every joiner, advance eviction, and
/// (for Scale-OIJ) refresh schedule snapshots and teammate progress, so the
/// interval trades per-event overhead against finalize/eviction latency.
struct PipelineConfig {
  /// Punctuate after this many tuples...
  uint64_t watermark_interval_events = 1024;
  /// ...or after this much wall time in paced runs (0 disables the timer).
  int64_t watermark_interval_us = 1000;

  /// When true, watermarks are derived from an online disorder estimate
  /// (AdaptiveWatermarkTracker) instead of the workload's configured
  /// lateness — the "tunable accuracy without prior knowledge" mode.
  /// Tuples arriving behind an already-emitted watermark are counted as
  /// accuracy violations in RunResult.
  bool adaptive_lateness = false;
  AdaptiveWatermarkTracker::Options adaptive;

  /// Optional cooperative stop (e.g. the SIGINT/SIGTERM flag from
  /// server/signal_stop.h). When non-null and set, the driver stops
  /// pulling from the source and drains normally — staged batches are
  /// flushed, JoinEngine::Sync() forces every WAL byte to disk, and the
  /// engine is Finish()ed — so an interrupted run still produces a
  /// consistent summary (and a durable log) instead of dying
  /// mid-stream.
  const std::atomic<bool>* stop = nullptr;

  /// Run crash recovery (JoinEngine::Recover) between Start() and the
  /// first Push, replaying whatever EngineOptions::durability.wal_dir
  /// holds. With durability off this is a no-op.
  bool recover = false;
};

/// Outcome of one complete run.
struct RunResult {
  EngineStats stats;
  uint64_t tuples = 0;
  double elapsed_seconds = 0.0;
  double throughput_tps = 0.0;  ///< input tuples per second

  // Adaptive-lateness accounting (zero unless adaptive_lateness is on).
  uint64_t watermark_violations = 0;  ///< tuples behind an emitted wm
  Timestamp final_adaptive_lag_us = 0;
};

/// Feeds a whole workload through an engine: starts it, paces the source
/// per the workload's arrival rate, injects punctuations, drains, and
/// returns merged stats. The single-call harness used by the examples,
/// the benches, and the integration tests. Paced runs flush the engine's
/// staged transport batches (JoinEngine::FlushPending) before each pacing
/// wait, so micro-batching never delays delivery across an idle gap.
RunResult RunPipeline(JoinEngine* engine, WorkloadGenerator* generator,
                      const PipelineConfig& config = PipelineConfig());

/// Generic variant over any pull source exposing
/// `bool Next(StreamEvent*)` and `Timestamp watermark()` — e.g. a
/// TraceSource replaying a recorded arrival sequence. `pace_rate_per_sec`
/// = 0 runs unthrottled.
template <typename Source>
RunResult RunPipelineFrom(JoinEngine* engine, Source* source,
                          uint64_t pace_rate_per_sec,
                          const PipelineConfig& config = PipelineConfig());

namespace internal {
/// Implementation shared by RunPipeline and RunPipelineFrom; defined in
/// pipeline.cc for the WorkloadGenerator instantiation and here for
/// arbitrary sources.
template <typename Source>
RunResult DrivePipeline(JoinEngine* engine, Source* source,
                        uint64_t pace_rate_per_sec,
                        const PipelineConfig& config);
}  // namespace internal

}  // namespace oij

#include "core/pipeline_impl.h"

#endif  // OIJ_CORE_PIPELINE_H_
