#include "core/engine_factory.h"

#include "join/handshake.h"
#include "join/key_oij.h"
#include "join/scale_oij.h"
#include "join/shared_state.h"
#include "join/split_join.h"

namespace oij {

std::string_view EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kKeyOij:
      return "key-oij";
    case EngineKind::kScaleOij:
      return "scale-oij";
    case EngineKind::kSplitJoin:
      return "split-join";
    case EngineKind::kSharedState:
      return "openmldb-like";
    case EngineKind::kHandshake:
      return "handshake";
  }
  return "?";
}

Status EngineKindFromName(std::string_view name, EngineKind* out) {
  if (name == "key-oij" || name == "key") {
    *out = EngineKind::kKeyOij;
  } else if (name == "scale-oij" || name == "scale") {
    *out = EngineKind::kScaleOij;
  } else if (name == "split-join" || name == "splitjoin") {
    *out = EngineKind::kSplitJoin;
  } else if (name == "openmldb-like" || name == "openmldb" ||
             name == "shared") {
    *out = EngineKind::kSharedState;
  } else if (name == "handshake") {
    *out = EngineKind::kHandshake;
  } else {
    return Status::InvalidArgument("unknown engine: " + std::string(name));
  }
  return Status::OK();
}

std::unique_ptr<JoinEngine> CreateEngine(EngineKind kind,
                                         const QuerySpec& spec,
                                         const EngineOptions& options,
                                         ResultSink* sink) {
  switch (kind) {
    case EngineKind::kKeyOij:
      return std::make_unique<KeyOijEngine>(spec, options, sink);
    case EngineKind::kScaleOij:
      return std::make_unique<ScaleOijEngine>(spec, options, sink);
    case EngineKind::kSplitJoin:
      return std::make_unique<SplitJoinEngine>(spec, options, sink);
    case EngineKind::kSharedState:
      return std::make_unique<SharedStateEngine>(spec, options, sink);
    case EngineKind::kHandshake:
      return std::make_unique<HandshakeOijEngine>(spec, options, sink);
  }
  return nullptr;
}

}  // namespace oij
