#include "core/feature_set.h"

#include <cmath>
#include <limits>

#include "sql/binder.h"
#include "sql/parser.h"

namespace oij {

bool FeatureSetSpec::RequiresFullState() const {
  bool has_extreme = false;
  bool has_other = false;
  bool has_min = false, has_max = false;
  for (const FeatureOutput& out : outputs) {
    if (out.kind == AggKind::kMin || out.kind == AggKind::kMax) {
      has_extreme = true;
      has_min |= out.kind == AggKind::kMin;
      has_max |= out.kind == AggKind::kMax;
    } else {
      has_other = true;
    }
  }
  // A lone min (or lone max) rides the Two-Stacks incremental state;
  // anything mixing extremes with other aggregates — or both extremes —
  // needs full window materialization.
  return (has_extreme && has_other) || (has_min && has_max);
}

Status CompileFeatureSet(std::string_view sql, FeatureSetSpec* out,
                         ParsedQuery* parsed_out) {
  ParsedQuery parsed;
  Status s = ParseQuery(sql, &parsed);
  if (!s.ok()) return s;
  s = BindQuery(parsed, &out->query);
  if (!s.ok()) return s;

  out->outputs.clear();
  for (const SelectItem& item : parsed.selects) {
    FeatureOutput output;
    s = AggKindFromName(item.func, &output.kind);
    if (!s.ok()) return s;
    output.column = item.column;
    output.name = item.func + "(" + item.column + ")";
    out->outputs.push_back(std::move(output));
  }
  if (parsed_out != nullptr) *parsed_out = parsed;
  return Status::OK();
}

double ExtractFeature(const JoinResult& result, AggKind kind) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  switch (kind) {
    case AggKind::kSum:
      return result.match_count == 0 ? 0.0 : result.sum;
    case AggKind::kCount:
      return static_cast<double>(result.match_count);
    case AggKind::kAvg:
      return result.match_count == 0 || std::isnan(result.sum)
                 ? nan
                 : result.sum / static_cast<double>(result.match_count);
    case AggKind::kMin:
      return result.match_count == 0 ? nan : result.min;
    case AggKind::kMax:
      return result.match_count == 0 ? nan : result.max;
  }
  return nan;
}

}  // namespace oij
