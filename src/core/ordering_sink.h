#ifndef OIJ_CORE_ORDERING_SINK_H_
#define OIJ_CORE_ORDERING_SINK_H_

#include <mutex>
#include <queue>
#include <vector>

#include "join/engine.h"

namespace oij {

/// Restores base-timestamp order over an engine's result stream.
///
/// Joiners emit results concurrently, so the raw stream interleaves
/// across keys. Downstream consumers that need deterministic, ordered
/// feature rows (e.g. training-data writers) wrap their sink in an
/// OrderingSink: results are buffered and forwarded to the inner sink in
/// (base.ts, base.key) order.
///
/// Release protocol: the driver calls ReleaseUpTo(T) once no result with
/// base ts <= T can still be produced. In EmitMode::kWatermark that is
/// exactly the engine's watermark minus the FOL offset (every base at or
/// below it has been finalized); the pipeline's punctuation points are
/// natural call sites. Flush() drains everything (end of stream).
class OrderingSink : public ResultSink {
 public:
  explicit OrderingSink(ResultSink* inner) : inner_(inner) {}

  void OnResult(const JoinResult& result) override {
    std::lock_guard<std::mutex> lock(mu_);
    heap_.push(result);
  }

  /// Forwards, in order, every buffered result with base ts <= bound.
  void ReleaseUpTo(Timestamp bound) {
    std::lock_guard<std::mutex> lock(mu_);
    while (!heap_.empty() && heap_.top().base.ts <= bound) {
      inner_->OnResult(heap_.top());
      heap_.pop();
    }
  }

  /// Forwards everything still buffered, in order.
  void Flush() { ReleaseUpTo(kMaxTimestamp); }

  /// Results currently held back.
  size_t buffered() const {
    std::lock_guard<std::mutex> lock(mu_);
    return heap_.size();
  }

 private:
  struct Later {
    bool operator()(const JoinResult& a, const JoinResult& b) const {
      if (a.base.ts != b.base.ts) return a.base.ts > b.base.ts;
      return a.base.key > b.base.key;
    }
  };

  ResultSink* inner_;
  mutable std::mutex mu_;
  std::priority_queue<JoinResult, std::vector<JoinResult>, Later> heap_;
};

}  // namespace oij

#endif  // OIJ_CORE_ORDERING_SINK_H_
