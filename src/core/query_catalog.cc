#include "core/query_catalog.h"

#include <charconv>

namespace oij {

namespace {

bool IdChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
}

bool ParseI64(std::string_view text, int64_t* out) {
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

}  // namespace

Status QueryCatalog::ValidateId(std::string_view id) {
  if (id.empty()) return Status::InvalidArgument("query id must be non-empty");
  if (id.size() > 64) {
    return Status::InvalidArgument("query id exceeds 64 characters");
  }
  for (char c : id) {
    if (!IdChar(c)) {
      return Status::InvalidArgument(
          "query id may only contain [A-Za-z0-9_.-]");
    }
  }
  return Status::OK();
}

Status QueryCatalog::Add(std::string_view id, const QuerySpec& spec,
                         uint32_t* ord_out) {
  if (Status s = ValidateId(id); !s.ok()) return s;
  if (Status s = spec.Validate(); !s.ok()) return s;
  for (const QueryEntry& e : entries_) {
    if (e.active && e.id == id) {
      return Status::InvalidArgument("query id '" + std::string(id) +
                                     "' already exists");
    }
  }
  QueryEntry entry;
  entry.ord = static_cast<uint32_t>(entries_.size());
  entry.id = std::string(id);
  entry.spec = spec;
  entries_.push_back(std::move(entry));
  if (ord_out != nullptr) *ord_out = entries_.back().ord;
  return Status::OK();
}

Status QueryCatalog::Remove(std::string_view id, uint32_t* ord_out) {
  for (QueryEntry& e : entries_) {
    if (e.active && e.id == id) {
      e.active = false;
      if (ord_out != nullptr) *ord_out = e.ord;
      return Status::OK();
    }
  }
  return Status::NotFound("no active query with id '" + std::string(id) +
                          "'");
}

Status QueryCatalog::Append(std::string_view id, const QuerySpec& spec,
                            bool active) {
  uint32_t ord = 0;
  if (Status s = Add(id, spec, &ord); !s.ok()) return s;
  entries_[ord].active = active;
  return Status::OK();
}

const QueryEntry* QueryCatalog::Find(std::string_view id) const {
  const QueryEntry* found = nullptr;
  for (const QueryEntry& e : entries_) {
    if (e.id == id) found = &e;
  }
  return found;
}

size_t QueryCatalog::active_count() const {
  size_t n = 0;
  for (const QueryEntry& e : entries_) {
    if (e.active) ++n;
  }
  return n;
}

std::string QueryCatalog::Serialize() const {
  std::string out;
  for (const QueryEntry& e : entries_) {
    out += "query=" + e.id;
    out += " pre=" + std::to_string(e.spec.window.pre);
    out += " fol=" + std::to_string(e.spec.window.fol);
    out += " lateness=" + std::to_string(e.spec.lateness_us);
    out += " agg=" + std::string(AggKindName(e.spec.agg));
    out += " emit=" + std::string(EmitModeName(e.spec.emit_mode));
    out += " late=" + std::string(LatePolicyName(e.spec.late_policy));
    out += " active=" + std::string(e.active ? "1" : "0");
    out += "\n";
  }
  return out;
}

Status QueryCatalog::Parse(std::string_view text, QueryCatalog* out) {
  QueryCatalog parsed;
  while (!text.empty()) {
    size_t eol = text.find('\n');
    std::string_view line =
        eol == std::string_view::npos ? text : text.substr(0, eol);
    text = eol == std::string_view::npos ? std::string_view()
                                         : text.substr(eol + 1);
    if (line.empty()) continue;

    QueryEntry entry;
    bool saw_id = false;
    bool active = true;
    while (!line.empty()) {
      size_t space = line.find(' ');
      std::string_view field =
          space == std::string_view::npos ? line : line.substr(0, space);
      line = space == std::string_view::npos ? std::string_view()
                                             : line.substr(space + 1);
      size_t eq = field.find('=');
      if (eq == std::string_view::npos) {
        return Status::ParseError("catalog field without '=': " +
                                  std::string(field));
      }
      std::string_view key = field.substr(0, eq);
      std::string_view value = field.substr(eq + 1);
      int64_t i64 = 0;
      if (key == "query") {
        entry.id = std::string(value);
        saw_id = true;
      } else if (key == "pre" && ParseI64(value, &i64)) {
        entry.spec.window.pre = i64;
      } else if (key == "fol" && ParseI64(value, &i64)) {
        entry.spec.window.fol = i64;
      } else if (key == "lateness" && ParseI64(value, &i64)) {
        entry.spec.lateness_us = i64;
      } else if (key == "agg") {
        if (Status s = AggKindFromName(value, &entry.spec.agg); !s.ok()) {
          return s;
        }
      } else if (key == "emit") {
        if (Status s = EmitModeFromName(value, &entry.spec.emit_mode);
            !s.ok()) {
          return s;
        }
      } else if (key == "late") {
        if (Status s = LatePolicyFromName(value, &entry.spec.late_policy);
            !s.ok()) {
          return s;
        }
      } else if (key == "active") {
        active = value != "0";
      } else {
        return Status::ParseError("bad catalog field: " + std::string(field));
      }
    }
    if (!saw_id) return Status::ParseError("catalog line without query id");
    uint32_t ord = 0;
    if (Status s = parsed.Add(entry.id, entry.spec, &ord); !s.ok()) return s;
    parsed.entries_[ord].active = active;
  }
  *out = std::move(parsed);
  return Status::OK();
}

}  // namespace oij
