#ifndef OIJ_CORE_PIPELINE_IMPL_H_
#define OIJ_CORE_PIPELINE_IMPL_H_

// Implementation details of the pipeline driver templates; include
// core/pipeline.h instead of this header.

#include <cstdio>
#include <cstdlib>

#include "common/clock.h"
#include "common/rate_limiter.h"
#include "core/pipeline.h"

namespace oij {
namespace internal {

template <typename Source>
RunResult DrivePipeline(JoinEngine* engine, Source* source,
                        uint64_t pace_rate_per_sec,
                        const PipelineConfig& config) {
  RunResult result;
  Status s = engine->Start();
  if (!s.ok()) {
    std::fprintf(stderr, "engine start failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  if (config.recover) {
    s = engine->Recover();
    if (!s.ok()) {
      std::fprintf(stderr, "engine recovery failed: %s\n",
                   s.ToString().c_str());
      std::abort();
    }
  }

  RateLimiter limiter(pace_rate_per_sec);
  const bool paced = !limiter.unlimited();
  const uint64_t wm_every = config.watermark_interval_events;
  const int64_t wm_timer_us = paced ? config.watermark_interval_us : 0;

  ThroughputMeter meter;
  meter.Start();

  AdaptiveWatermarkTracker adaptive(config.adaptive);

  StreamEvent ev;
  uint64_t since_wm = 0;
  int64_t last_wm_check_us = MonotonicNowUs();
  while (!(config.stop != nullptr &&
           config.stop->load(std::memory_order_relaxed)) &&
         source->Next(&ev)) {
    if (paced) {
      // Don't hold a partially filled transport batch across a pacing
      // gap: the joiners should see everything pushed so far while the
      // driver sleeps in the limiter.
      engine->FlushPending();
      limiter.Acquire();
    }
    if (config.adaptive_lateness) adaptive.Observe(ev.tuple.ts);
    engine->Push(ev, MonotonicNowUs());
    ++result.tuples;

    bool punctuate = ++since_wm >= wm_every;
    if (!punctuate && wm_timer_us > 0 && (result.tuples & 63) == 0) {
      const int64_t now = MonotonicNowUs();
      punctuate = now - last_wm_check_us >= wm_timer_us;
    }
    if (punctuate) {
      since_wm = 0;
      last_wm_check_us = MonotonicNowUs();
      engine->SignalWatermark(config.adaptive_lateness
                                  ? adaptive.Emit()
                                  : source->watermark());
    }
  }

  if (config.adaptive_lateness) {
    result.watermark_violations = adaptive.violations();
    result.final_adaptive_lag_us = adaptive.CurrentLag();
  }

  if (config.stop != nullptr && config.stop->load(std::memory_order_relaxed)) {
    // Cooperative drain (SIGINT/SIGTERM): make everything accepted so
    // far durable before finalizing, so a graceful shutdown never loses
    // logged state regardless of the fsync policy.
    engine->Sync();
  }
  result.stats = engine->Finish();
  meter.Stop();
  meter.AddTuples(result.tuples);
  result.elapsed_seconds = meter.elapsed_seconds();
  result.throughput_tps = meter.TuplesPerSecond();
  return result;
}

}  // namespace internal

template <typename Source>
RunResult RunPipelineFrom(JoinEngine* engine, Source* source,
                          uint64_t pace_rate_per_sec,
                          const PipelineConfig& config) {
  return internal::DrivePipeline(engine, source, pace_rate_per_sec, config);
}

}  // namespace oij

#endif  // OIJ_CORE_PIPELINE_IMPL_H_
