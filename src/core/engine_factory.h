#ifndef OIJ_CORE_ENGINE_FACTORY_H_
#define OIJ_CORE_ENGINE_FACTORY_H_

#include <memory>
#include <string_view>

#include "join/engine.h"

namespace oij {

/// The engines evaluated in the paper.
enum class EngineKind : uint8_t {
  kKeyOij = 0,     ///< Flink-style key-partitioned baseline (Section II-C)
  kScaleOij,       ///< the paper's contribution (Section V)
  kSplitJoin,      ///< SplitJoin adapted to OIJ (Section V-D)
  kSharedState,    ///< OpenMLDB-like shared-table baseline (Section V-E)
  kHandshake,      ///< handshake join adapted to OIJ (extension baseline)
};

std::string_view EngineKindName(EngineKind kind);
Status EngineKindFromName(std::string_view name, EngineKind* out);

/// Builds an engine. `sink` must outlive the engine; pass a NullSink for
/// pure measurement runs.
std::unique_ptr<JoinEngine> CreateEngine(EngineKind kind,
                                         const QuerySpec& spec,
                                         const EngineOptions& options,
                                         ResultSink* sink);

}  // namespace oij

#endif  // OIJ_CORE_ENGINE_FACTORY_H_
