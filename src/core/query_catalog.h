#ifndef OIJ_CORE_QUERY_CATALOG_H_
#define OIJ_CORE_QUERY_CATALOG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/query_spec.h"

namespace oij {

/// One standing query registered with an engine. Ordinals are assigned in
/// registration order and never reused: a removed query keeps its ordinal
/// (with active = false) so that result tags and WAL replay stay stable.
struct QueryEntry {
  uint32_t ord = 0;
  std::string id;
  QuerySpec spec;
  bool active = true;
};

/// The set of standing queries sharing one engine's time-travel index.
///
/// This is the pure data + serialization layer: the engines keep their own
/// runtime bookkeeping (per-query pendings, counters) keyed by ordinal, and
/// use the catalog for id/spec validation, manifest serialization, and the
/// admin plane. Entry 0 is always the primary query the engine was
/// constructed with.
///
/// Catalog text format (one line per entry, ordinal order — the parser
/// assigns ordinals sequentially so a round trip preserves them):
///
///   query=<id> pre=<i64> fol=<i64> lateness=<i64> agg=<name>
///       emit=<name> late=<name> active=<0|1>   (one line per entry)
class QueryCatalog {
 public:
  /// Ids are restricted to [A-Za-z0-9_.-]{1,64} so they can be embedded in
  /// URLs, Prometheus label values, and the space-separated catalog lines
  /// without quoting.
  static Status ValidateId(std::string_view id);

  /// Appends an entry with the next ordinal. Rejects invalid ids/specs and
  /// ids that collide with any *active* entry. Re-adding a removed id
  /// creates a fresh entry under a new ordinal.
  Status Add(std::string_view id, const QuerySpec& spec, uint32_t* ord_out);

  /// Marks the active entry with this id inactive. NotFound if no active
  /// entry has the id.
  Status Remove(std::string_view id, uint32_t* ord_out);

  /// Appends an entry preserving an explicit active flag (for engines
  /// exporting their runtime catalog; ordinals are still assigned
  /// sequentially, so the export preserves them).
  Status Append(std::string_view id, const QuerySpec& spec, bool active);

  /// Latest entry with this id (active or not); nullptr if never added.
  const QueryEntry* Find(std::string_view id) const;

  const std::vector<QueryEntry>& entries() const { return entries_; }
  size_t active_count() const;

  /// Serializes every entry (including inactive ones, to keep ordinals
  /// stable across a round trip) as newline-terminated catalog lines.
  std::string Serialize() const;

  /// Parses catalog lines produced by Serialize into *out (replacing its
  /// contents). ParseError on any malformed line.
  static Status Parse(std::string_view text, QueryCatalog* out);

 private:
  std::vector<QueryEntry> entries_;
};

}  // namespace oij

#endif  // OIJ_CORE_QUERY_CATALOG_H_
