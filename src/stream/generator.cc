#include "stream/generator.h"

#include <cassert>

namespace oij {

WorkloadGenerator::WorkloadGenerator(const WorkloadSpec& spec)
    : spec_(spec), rng_(spec.seed) {
  assert(spec_.Validate().ok());
  if (spec_.key_distribution == KeyDistribution::kZipf) {
    zipf_.emplace(spec_.num_keys, spec_.zipf_theta);
  }
  interval_us_ = 1e6 / static_cast<double>(spec_.event_rate_per_sec);
  disorder_bound_ =
      spec_.disorder_bound_us >= 0 ? spec_.disorder_bound_us
                                   : spec_.lateness_us;
}

Key WorkloadGenerator::PickKey() {
  switch (spec_.key_distribution) {
    case KeyDistribution::kUniform:
      return rng_.NextBelow(spec_.num_keys);
    case KeyDistribution::kZipf:
      return zipf_->Sample(rng_);
    case KeyDistribution::kRotatingHotSet: {
      const int64_t epoch = static_cast<int64_t>(
          event_cursor_us_ /
          static_cast<double>(spec_.hot_rotation_period_us));
      if (epoch != hot_epoch_) {
        hot_epoch_ = epoch;
        Rng hot_rng(spec_.seed ^ (static_cast<uint64_t>(epoch) * 0x9e3779b9ULL));
        hot_keys_.resize(spec_.hot_set_size);
        for (auto& k : hot_keys_) k = hot_rng.NextBelow(spec_.num_keys);
      }
      if (rng_.NextDouble() < spec_.hot_fraction) {
        return hot_keys_[rng_.NextBelow(hot_keys_.size())];
      }
      return rng_.NextBelow(spec_.num_keys);
    }
  }
  return 0;
}

void WorkloadGenerator::GenerateOne() {
  StreamEvent ev;
  ev.stream = rng_.NextDouble() < spec_.probe_fraction ? StreamId::kProbe
                                                       : StreamId::kBase;
  ev.tuple.ts = static_cast<Timestamp>(event_cursor_us_);
  ev.tuple.key = PickKey();
  ev.tuple.payload = rng_.NextDouble() * 100.0;
  event_cursor_us_ += interval_us_;
  ++generated_;

  Timestamp delay =
      disorder_bound_ > 0
          ? static_cast<Timestamp>(rng_.NextBelow(
                static_cast<uint64_t>(disorder_bound_) + 1))
          : 0;
  if (spec_.late_flood_fraction > 0.0 &&
      rng_.NextDouble() < spec_.late_flood_fraction) {
    // Deliberate lateness-bound violation: hold the tuple back beyond
    // what any watermark computed under `lateness_us` can tolerate.
    delay = spec_.lateness_us + spec_.late_flood_extra_us;
    ++late_flood_generated_;
  }
  delay_heap_.push(Pending{ev.tuple.ts + delay, generated_, ev});
}

bool WorkloadGenerator::Next(StreamEvent* out) {
  // Keep generating until the head of the delay heap is releasable: a
  // pending arrival may be released once the in-order cursor has passed
  // its release time (no future tuple can be scheduled earlier), or once
  // generation is exhausted.
  while (true) {
    if (delay_heap_.empty()) {
      if (generated_ >= spec_.total_tuples) return false;
      GenerateOne();
      continue;
    }
    const Pending& head = delay_heap_.top();
    if (generated_ < spec_.total_tuples &&
        static_cast<double>(head.release_at) >= event_cursor_us_) {
      GenerateOne();
      continue;
    }
    *out = head.event;
    delay_heap_.pop();
    ++emitted_;
    if (out->tuple.ts > max_emitted_ts_) max_emitted_ts_ = out->tuple.ts;
    return true;
  }
}

}  // namespace oij
