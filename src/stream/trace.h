#ifndef OIJ_STREAM_TRACE_H_
#define OIJ_STREAM_TRACE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "stream/generator.h"

namespace oij {

/// Binary arrival-trace files: the bridge to *real* workloads. A trace is
/// the exact arrival sequence (stream id, timestamp, key, payload) of a
/// run; recording one from production (or from a generator) and replaying
/// it makes engine comparisons input-identical and reproducible across
/// machines — the methodology the paper uses with its four proprietary
/// traces.
///
/// Format: a 16-byte header ("OIJTRACE", u32 version, u32 reserved),
/// a u64 record count, then packed 25-byte records
/// (u8 stream, i64 ts, u64 key, f64 payload), all little-endian.

/// Writes `events` to `path`, overwriting. Fails with Internal on I/O
/// errors.
Status WriteTrace(const std::string& path,
                  const std::vector<StreamEvent>& events);

/// Reads a trace written by WriteTrace. Validates magic, version, and
/// record count against the file size.
Status ReadTrace(const std::string& path, std::vector<StreamEvent>* out);

/// Pull-source over a materialized trace with the same surface a
/// WorkloadGenerator offers (Next/watermark), so RunPipeline-style
/// drivers can replay traces. Lateness must be supplied (or measured
/// with MeasureDisorder below) since a raw trace does not carry it.
class TraceSource {
 public:
  TraceSource(std::vector<StreamEvent> events, Timestamp lateness_us)
      : events_(std::move(events)), lateness_us_(lateness_us) {}

  bool Next(StreamEvent* out) {
    if (pos_ >= events_.size()) return false;
    *out = events_[pos_++];
    if (out->tuple.ts > max_seen_) max_seen_ = out->tuple.ts;
    return true;
  }

  Timestamp watermark() const {
    return max_seen_ == kMinTimestamp ? kMinTimestamp
                                      : max_seen_ - lateness_us_;
  }

  size_t size() const { return events_.size(); }
  uint64_t emitted() const { return pos_; }

 private:
  std::vector<StreamEvent> events_;
  Timestamp lateness_us_;
  size_t pos_ = 0;
  Timestamp max_seen_ = kMinTimestamp;
};

/// Maximum observed disorder of a trace: the smallest lateness that
/// replays it exactly.
Timestamp MeasureDisorder(const std::vector<StreamEvent>& events);

/// CSV interchange, for importing real workloads exported from other
/// systems and for eyeballing traces. Format: a `stream,ts,key,payload`
/// header, then one record per line with stream ∈ {S, R} (S = base).
/// Payloads round-trip exactly (printed with %.17g).
Status WriteTraceCsv(const std::string& path,
                     const std::vector<StreamEvent>& events);
Status ReadTraceCsv(const std::string& path,
                    std::vector<StreamEvent>* out);

}  // namespace oij

#endif  // OIJ_STREAM_TRACE_H_
