#ifndef OIJ_STREAM_GENERATOR_H_
#define OIJ_STREAM_GENERATOR_H_

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "stream/workload.h"

namespace oij {

/// One generated arrival: a tuple on one of the two streams.
struct StreamEvent {
  StreamId stream = StreamId::kBase;
  Tuple tuple;
};

/// Deterministic workload generator with bounded-disorder injection.
///
/// Tuples are produced with monotonically increasing event timestamps at
/// `event_rate_per_sec`; each tuple is then held back by a random delay in
/// [0, disorder_bound_us] of *event time* and released in delayed order.
/// The resulting arrival sequence has disorder bounded exactly by the
/// delay bound, so a watermark of (max emitted ts − lateness) with
/// lateness >= disorder_bound_us never declares a tuple late — the 100%
/// accuracy regime OpenMLDB applications require (Section III-C).
///
/// The same seed always reproduces the same arrival sequence, which is
/// what lets every engine be differential-tested against the reference
/// join.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(const WorkloadSpec& spec);

  /// Produces the next arrival. Returns false when the workload is
  /// exhausted (all `total_tuples` generated and released).
  bool Next(StreamEvent* out);

  /// Watermark implied by everything emitted so far: max emitted event
  /// timestamp minus the configured lateness.
  Timestamp watermark() const { return max_emitted_ts_ - spec_.lateness_us; }

  /// Number of arrivals emitted so far.
  uint64_t emitted() const { return emitted_; }

  /// Tuples the late-flood knob delayed past the lateness bound. Note
  /// this counts *potential* violations: whether a flooded tuple is
  /// actually late on arrival depends on the watermark cadence in force
  /// downstream (a tuple near the end of the stream may never see a
  /// watermark pass it).
  uint64_t late_flood_generated() const { return late_flood_generated_; }

  const WorkloadSpec& spec() const { return spec_; }

 private:
  struct Pending {
    Timestamp release_at;  // ts + injected delay
    uint64_t tie;          // generation order, to keep releases stable
    StreamEvent event;

    bool operator>(const Pending& other) const {
      return release_at != other.release_at ? release_at > other.release_at
                                            : tie > other.tie;
    }
  };

  /// Generates the next in-order tuple and pushes it into the delay heap.
  void GenerateOne();

  Key PickKey();

  WorkloadSpec spec_;
  Rng rng_;
  std::optional<ZipfSampler> zipf_;

  double interval_us_;          // event-time microseconds per tuple
  double event_cursor_us_ = 0;  // next in-order event timestamp
  uint64_t generated_ = 0;
  uint64_t emitted_ = 0;
  uint64_t late_flood_generated_ = 0;
  Timestamp max_emitted_ts_ = kMinTimestamp;
  Timestamp disorder_bound_;

  std::vector<Key> hot_keys_;
  int64_t hot_epoch_ = -1;

  std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>>
      delay_heap_;
};

}  // namespace oij

#endif  // OIJ_STREAM_GENERATOR_H_
