#ifndef OIJ_STREAM_PRESETS_H_
#define OIJ_STREAM_PRESETS_H_

#include <string_view>
#include <vector>

#include "stream/workload.h"

namespace oij {

/// Synthetic stand-ins for the paper's four proprietary workloads
/// (Table II plus the match-density prose of Section III-C). Absolute
/// rates are preserved; match densities are tuned so that the per-window
/// and per-lateness-range populations approximate the stated figures.
/// See DESIGN.md §2 for the substitution rationale.
WorkloadSpec WorkloadA();  ///< logistics: 120 K/s, u=5,  |w|=1 s,   l=1 s
WorkloadSpec WorkloadB();  ///< retail:    200 K/s, u=111,|w|=150 s, l=10 s
WorkloadSpec WorkloadC();  ///< retail:    ∞,       u=45, |w|=8 s,   l=100 s
WorkloadSpec WorkloadD();  ///< logistics: 15 K/s,  u=5,  |w|=1 s,   l=2 s

/// The default synthetic workload of Table IV: u=100, |w|=1000 us,
/// l=100 us (16 joiner threads is an engine option, not a workload knob).
WorkloadSpec DefaultSynthetic();

/// The adversarial synthetic workload of Table V (Fig 21): u=1000,
/// |w|=100 us, l=10 us — small window and lateness, many keys, the regime
/// where Key-OIJ is expected to win.
WorkloadSpec AdversarialSynthetic();

/// The rotating-hot-set skewed workload of Fig 14: u=10K with a periodic
/// random hot set, other parameters per Table IV.
WorkloadSpec SkewedRotating();

/// All four real-workload presets in order (A, B, C, D).
std::vector<WorkloadSpec> RealWorkloads();

/// Looks up any preset by name ("A".."D", "default", "adversarial",
/// "skewed"); returns true on success.
bool FindPreset(std::string_view name, WorkloadSpec* out);

}  // namespace oij

#endif  // OIJ_STREAM_PRESETS_H_
