#ifndef OIJ_STREAM_WORKLOAD_H_
#define OIJ_STREAM_WORKLOAD_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/types.h"

namespace oij {

/// Key-popularity models for the generator.
enum class KeyDistribution : uint8_t {
  kUniform = 0,
  kZipf,
  /// A rotating hot set: `hot_fraction` of tuples draw from a small set of
  /// hot keys that is re-drawn every `hot_rotation_period_us` of event
  /// time. This reproduces the "random set of hot keys flow periodically"
  /// workload of Fig 14.
  kRotatingHotSet,
};

/// Full description of a benchmark workload — the knobs of Tables II, IV
/// and V plus the generator-level details (stream mix, disorder model).
struct WorkloadSpec {
  std::string name = "default";

  /// Number of distinct keys u.
  uint64_t num_keys = 100;

  /// Relative window (PRE, FOL) in microseconds. The paper's workloads use
  /// preceding-only windows (features over history), i.e. fol = 0, but the
  /// engine supports both offsets (Definition 2).
  IntervalWindow window{1000, 0};

  /// Lateness l in microseconds: upper bound on stream disorder.
  Timestamp lateness_us = 100;

  /// Maximum injected arrival delay in event-time microseconds. Tuples may
  /// arrive up to this much "late"; must be <= lateness_us for exact
  /// results. Defaults to lateness_us when left negative.
  Timestamp disorder_bound_us = -1;

  /// Event-time density: tuples (S+R combined) per second of event time.
  /// Determines matches-per-window irrespective of processing speed.
  uint64_t event_rate_per_sec = 1'000'000;

  /// Wall-clock pacing: tuples/s fed to the engine. 0 = unthrottled
  /// (throughput mode / Workload C's "infinite" arrival rate).
  uint64_t pace_rate_per_sec = 0;

  /// Fraction of tuples that belong to the probe stream R; the rest are
  /// base tuples S (each of which produces one output).
  double probe_fraction = 0.5;

  /// Total tuples generated (S + R).
  uint64_t total_tuples = 1'000'000;

  KeyDistribution key_distribution = KeyDistribution::kUniform;
  double zipf_theta = 0.99;          ///< used when kZipf
  uint64_t hot_set_size = 16;        ///< used when kRotatingHotSet
  double hot_fraction = 0.9;         ///< used when kRotatingHotSet
  Timestamp hot_rotation_period_us = 1'000'000;

  /// Fault-injection knob: fraction of tuples delayed *past* the lateness
  /// bound — each flooded tuple's arrival delay is lateness_us +
  /// late_flood_extra_us, deliberately violating the exactness contract.
  /// 0 disables the flood entirely (no extra rng draw, so a seed
  /// reproduces the exact same arrival sequence as before the knob
  /// existed). Exercises the engines' LatePolicy paths.
  double late_flood_fraction = 0.0;
  Timestamp late_flood_extra_us = 1;

  uint64_t seed = 42;

  /// Derived: expected probe tuples per key per window (match density).
  double ExpectedMatchesPerWindow() const {
    const double probe_rate =
        static_cast<double>(event_rate_per_sec) * probe_fraction;
    const double per_key = probe_rate / static_cast<double>(num_keys);
    return per_key * (static_cast<double>(window.length()) / 1e6);
  }

  /// Validates parameter consistency (exactness requires the disorder
  /// bound not to exceed the configured lateness, etc.).
  Status Validate() const;
};

/// Serializes a spec as `key=value` lines (stable field order), the
/// format benches and experiment logs use to make every run reproducible
/// from its printed configuration.
std::string WorkloadSpecToConfig(const WorkloadSpec& spec);

/// Parses WorkloadSpecToConfig output (unknown keys are rejected so typos
/// fail loudly; missing keys keep their defaults). `#` starts a comment.
Status WorkloadSpecFromConfig(std::string_view config, WorkloadSpec* out);

}  // namespace oij

#endif  // OIJ_STREAM_WORKLOAD_H_
