#include "stream/workload.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace oij {

namespace {

std::string_view KeyDistributionName(KeyDistribution d) {
  switch (d) {
    case KeyDistribution::kUniform:
      return "uniform";
    case KeyDistribution::kZipf:
      return "zipf";
    case KeyDistribution::kRotatingHotSet:
      return "rotating_hot_set";
  }
  return "?";
}

Status KeyDistributionFromName(std::string_view name, KeyDistribution* out) {
  if (name == "uniform") {
    *out = KeyDistribution::kUniform;
  } else if (name == "zipf") {
    *out = KeyDistribution::kZipf;
  } else if (name == "rotating_hot_set") {
    *out = KeyDistribution::kRotatingHotSet;
  } else {
    return Status::ParseError("unknown key distribution: " +
                              std::string(name));
  }
  return Status::OK();
}

std::string_view TrimView(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

Status WorkloadSpec::Validate() const {
  if (num_keys == 0) {
    return Status::InvalidArgument("num_keys must be positive");
  }
  if (window.pre < 0 || window.fol < 0) {
    return Status::InvalidArgument("window offsets must be non-negative");
  }
  if (lateness_us < 0) {
    return Status::InvalidArgument("lateness must be non-negative");
  }
  if (disorder_bound_us >= 0 && disorder_bound_us > lateness_us) {
    return Status::InvalidArgument(
        "disorder bound exceeds lateness: results would be inexact");
  }
  if (event_rate_per_sec == 0) {
    return Status::InvalidArgument("event_rate_per_sec must be positive");
  }
  if (late_flood_fraction < 0.0 || late_flood_fraction > 1.0) {
    return Status::InvalidArgument("late_flood_fraction must be in [0, 1]");
  }
  if (late_flood_extra_us < 0) {
    return Status::InvalidArgument("late_flood_extra_us must be non-negative");
  }
  if (probe_fraction < 0.0 || probe_fraction > 1.0) {
    return Status::InvalidArgument("probe_fraction must be in [0, 1]");
  }
  if (key_distribution == KeyDistribution::kZipf && zipf_theta < 0.0) {
    return Status::InvalidArgument("zipf_theta must be non-negative");
  }
  if (key_distribution == KeyDistribution::kRotatingHotSet) {
    if (hot_set_size == 0 || hot_set_size > num_keys) {
      return Status::InvalidArgument("hot_set_size must be in [1, num_keys]");
    }
    if (hot_rotation_period_us <= 0) {
      return Status::InvalidArgument("hot_rotation_period_us must be > 0");
    }
    if (hot_fraction < 0.0 || hot_fraction > 1.0) {
      return Status::InvalidArgument("hot_fraction must be in [0, 1]");
    }
  }
  return Status::OK();
}

std::string WorkloadSpecToConfig(const WorkloadSpec& spec) {
  std::ostringstream os;
  os << "name=" << spec.name << "\n"
     << "num_keys=" << spec.num_keys << "\n"
     << "window_pre_us=" << spec.window.pre << "\n"
     << "window_fol_us=" << spec.window.fol << "\n"
     << "lateness_us=" << spec.lateness_us << "\n"
     << "disorder_bound_us=" << spec.disorder_bound_us << "\n"
     << "event_rate_per_sec=" << spec.event_rate_per_sec << "\n"
     << "pace_rate_per_sec=" << spec.pace_rate_per_sec << "\n"
     << "probe_fraction=" << spec.probe_fraction << "\n"
     << "total_tuples=" << spec.total_tuples << "\n"
     << "key_distribution=" << KeyDistributionName(spec.key_distribution)
     << "\n"
     << "zipf_theta=" << spec.zipf_theta << "\n"
     << "hot_set_size=" << spec.hot_set_size << "\n"
     << "hot_fraction=" << spec.hot_fraction << "\n"
     << "hot_rotation_period_us=" << spec.hot_rotation_period_us << "\n"
     << "late_flood_fraction=" << spec.late_flood_fraction << "\n"
     << "late_flood_extra_us=" << spec.late_flood_extra_us << "\n"
     << "seed=" << spec.seed << "\n";
  return os.str();
}

Status WorkloadSpecFromConfig(std::string_view config, WorkloadSpec* out) {
  WorkloadSpec spec;
  size_t pos = 0;
  size_t line_no = 0;
  while (pos <= config.size()) {
    const size_t eol = config.find('\n', pos);
    std::string_view line = config.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? config.size() + 1 : eol + 1;
    ++line_no;
    line = TrimView(line);
    if (line.empty() || line.front() == '#') continue;
    const size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::ParseError("config line " + std::to_string(line_no) +
                                " has no '='");
    }
    const std::string key(TrimView(line.substr(0, eq)));
    const std::string value(TrimView(line.substr(eq + 1)));
    auto as_i64 = [&]() { return std::strtoll(value.c_str(), nullptr, 10); };
    auto as_u64 = [&]() { return std::strtoull(value.c_str(), nullptr, 10); };
    auto as_f64 = [&]() { return std::strtod(value.c_str(), nullptr); };

    if (key == "name") {
      spec.name = value;
    } else if (key == "num_keys") {
      spec.num_keys = as_u64();
    } else if (key == "window_pre_us") {
      spec.window.pre = as_i64();
    } else if (key == "window_fol_us") {
      spec.window.fol = as_i64();
    } else if (key == "lateness_us") {
      spec.lateness_us = as_i64();
    } else if (key == "disorder_bound_us") {
      spec.disorder_bound_us = as_i64();
    } else if (key == "event_rate_per_sec") {
      spec.event_rate_per_sec = as_u64();
    } else if (key == "pace_rate_per_sec") {
      spec.pace_rate_per_sec = as_u64();
    } else if (key == "probe_fraction") {
      spec.probe_fraction = as_f64();
    } else if (key == "total_tuples") {
      spec.total_tuples = as_u64();
    } else if (key == "key_distribution") {
      Status s = KeyDistributionFromName(value, &spec.key_distribution);
      if (!s.ok()) return s;
    } else if (key == "zipf_theta") {
      spec.zipf_theta = as_f64();
    } else if (key == "hot_set_size") {
      spec.hot_set_size = as_u64();
    } else if (key == "hot_fraction") {
      spec.hot_fraction = as_f64();
    } else if (key == "hot_rotation_period_us") {
      spec.hot_rotation_period_us = as_i64();
    } else if (key == "late_flood_fraction") {
      spec.late_flood_fraction = as_f64();
    } else if (key == "late_flood_extra_us") {
      spec.late_flood_extra_us = as_i64();
    } else if (key == "seed") {
      spec.seed = as_u64();
    } else {
      return Status::ParseError("unknown config key: " + key);
    }
  }
  Status s = spec.Validate();
  if (!s.ok()) return s;
  *out = spec;
  return Status::OK();
}

}  // namespace oij
