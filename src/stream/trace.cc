#include "stream/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>

namespace oij {

namespace {

constexpr char kMagic[8] = {'O', 'I', 'J', 'T', 'R', 'A', 'C', 'E'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderBytes = 8 + 4 + 4 + 8;  // magic, version, rsvd, count
constexpr size_t kRecordBytes = 1 + 8 + 8 + 8;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void PutU32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}
void PutU64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}
uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

Status WriteTrace(const std::string& path,
                  const std::vector<StreamEvent>& events) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::Internal("cannot open for writing: " + path);
  }

  uint8_t header[kHeaderBytes];
  std::memcpy(header, kMagic, 8);
  PutU32(header + 8, kVersion);
  PutU32(header + 12, 0);
  PutU64(header + 16, events.size());
  if (std::fwrite(header, 1, sizeof(header), f.get()) != sizeof(header)) {
    return Status::Internal("short header write: " + path);
  }

  std::vector<uint8_t> buf;
  buf.reserve(kRecordBytes * 4096);
  auto flush = [&]() -> bool {
    const bool ok =
        std::fwrite(buf.data(), 1, buf.size(), f.get()) == buf.size();
    buf.clear();
    return ok;
  };
  for (const StreamEvent& ev : events) {
    uint8_t rec[kRecordBytes];
    rec[0] = static_cast<uint8_t>(ev.stream);
    PutU64(rec + 1, static_cast<uint64_t>(ev.tuple.ts));
    PutU64(rec + 9, ev.tuple.key);
    uint64_t payload_bits;
    std::memcpy(&payload_bits, &ev.tuple.payload, 8);
    PutU64(rec + 17, payload_bits);
    buf.insert(buf.end(), rec, rec + sizeof(rec));
    if (buf.size() >= kRecordBytes * 4096 && !flush()) {
      return Status::Internal("short record write: " + path);
    }
  }
  if (!flush()) return Status::Internal("short record write: " + path);
  return Status::OK();
}

Status ReadTrace(const std::string& path, std::vector<StreamEvent>* out) {
  out->clear();
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::NotFound("cannot open trace: " + path);
  }

  uint8_t header[kHeaderBytes];
  if (std::fread(header, 1, sizeof(header), f.get()) != sizeof(header)) {
    return Status::ParseError("trace too short for header: " + path);
  }
  if (std::memcmp(header, kMagic, 8) != 0) {
    return Status::ParseError("bad trace magic: " + path);
  }
  const uint32_t version = GetU32(header + 8);
  if (version != kVersion) {
    return Status::ParseError("unsupported trace version " +
                              std::to_string(version) + ": " + path);
  }
  const uint64_t count = GetU64(header + 16);

  out->reserve(count);
  std::vector<uint8_t> buf(kRecordBytes * 4096);
  uint64_t remaining = count;
  while (remaining > 0) {
    const size_t want =
        static_cast<size_t>(std::min<uint64_t>(remaining, 4096)) *
        kRecordBytes;
    if (std::fread(buf.data(), 1, want, f.get()) != want) {
      return Status::ParseError("trace truncated: " + path);
    }
    for (size_t off = 0; off < want; off += kRecordBytes) {
      const uint8_t* rec = buf.data() + off;
      StreamEvent ev;
      if (rec[0] > 1) {
        return Status::ParseError("corrupt stream id in trace: " + path);
      }
      ev.stream = static_cast<StreamId>(rec[0]);
      ev.tuple.ts = static_cast<Timestamp>(GetU64(rec + 1));
      ev.tuple.key = GetU64(rec + 9);
      const uint64_t payload_bits = GetU64(rec + 17);
      std::memcpy(&ev.tuple.payload, &payload_bits, 8);
      out->push_back(ev);
    }
    remaining -= want / kRecordBytes;
  }
  // Trailing garbage means the count header lies.
  uint8_t extra;
  if (std::fread(&extra, 1, 1, f.get()) == 1) {
    return Status::ParseError("trailing bytes after trace records: " + path);
  }
  return Status::OK();
}

Status WriteTraceCsv(const std::string& path,
                     const std::vector<StreamEvent>& events) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) {
    return Status::Internal("cannot open for writing: " + path);
  }
  if (std::fputs("stream,ts,key,payload\n", f.get()) < 0) {
    return Status::Internal("write failed: " + path);
  }
  for (const StreamEvent& ev : events) {
    if (std::fprintf(f.get(), "%c,%lld,%llu,%.17g\n",
                     ev.stream == StreamId::kBase ? 'S' : 'R',
                     static_cast<long long>(ev.tuple.ts),
                     static_cast<unsigned long long>(ev.tuple.key),
                     ev.tuple.payload) < 0) {
      return Status::Internal("write failed: " + path);
    }
  }
  return Status::OK();
}

Status ReadTraceCsv(const std::string& path,
                    std::vector<StreamEvent>* out) {
  out->clear();
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (f == nullptr) {
    return Status::NotFound("cannot open trace csv: " + path);
  }
  char line[256];
  size_t line_no = 0;
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    ++line_no;
    if (line_no == 1) {
      if (std::strncmp(line, "stream,ts,key,payload", 21) != 0) {
        return Status::ParseError("bad csv header in " + path);
      }
      continue;
    }
    char stream_ch = 0;
    long long ts = 0;
    unsigned long long key = 0;
    double payload = 0.0;
    if (std::sscanf(line, " %c ,%lld,%llu,%lf", &stream_ch, &ts, &key,
                    &payload) != 4 ||
        (stream_ch != 'S' && stream_ch != 'R')) {
      return Status::ParseError("bad csv record at " + path + ":" +
                                std::to_string(line_no));
    }
    StreamEvent ev;
    ev.stream = stream_ch == 'S' ? StreamId::kBase : StreamId::kProbe;
    ev.tuple.ts = static_cast<Timestamp>(ts);
    ev.tuple.key = static_cast<Key>(key);
    ev.tuple.payload = payload;
    out->push_back(ev);
  }
  return Status::OK();
}

Timestamp MeasureDisorder(const std::vector<StreamEvent>& events) {
  Timestamp max_seen = kMinTimestamp;
  Timestamp worst = 0;
  for (const StreamEvent& ev : events) {
    if (max_seen != kMinTimestamp && max_seen - ev.tuple.ts > worst) {
      worst = max_seen - ev.tuple.ts;
    }
    if (ev.tuple.ts > max_seen) max_seen = ev.tuple.ts;
  }
  return worst;
}

}  // namespace oij
