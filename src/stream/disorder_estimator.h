#ifndef OIJ_STREAM_DISORDER_ESTIMATOR_H_
#define OIJ_STREAM_DISORDER_ESTIMATOR_H_

#include <algorithm>
#include <cstdint>

#include "common/types.h"
#include "metrics/latency_recorder.h"

namespace oij {

/// Online estimator of stream disorder — the basis of the "tunable
/// accuracy without prior knowledge (i.e., lateness)" extension the
/// paper's conclusion calls out as future work (cf. Ji et al. [9],
/// quality-driven disorder handling).
///
/// For every observed tuple the estimator records its *delay* — how far
/// behind the running maximum timestamp it arrived. The delay
/// distribution is kept in a log-bucketed histogram, so a watermark lag
/// covering any target quantile of tuples can be queried at any time:
/// lag = delay-quantile(q) × safety_factor. q = 1.0 with a generous
/// safety factor approaches exactness; smaller q trades bounded
/// inaccuracy (late tuples dropped past the watermark) for smaller
/// buffers and lower result latency.
class DisorderEstimator {
 public:
  /// Records an arrival; returns its delay (0 for in-order tuples).
  Timestamp Observe(Timestamp ts) {
    if (ts >= max_seen_) {
      max_seen_ = ts;
      delays_.Record(0);
      return 0;
    }
    const Timestamp delay = max_seen_ - ts;
    delays_.Record(delay);
    return delay;
  }

  /// Delay covering quantile `q` of all arrivals seen so far.
  Timestamp DelayQuantile(double q) const { return delays_.Percentile(q); }

  /// Largest delay ever observed (the oracle lateness for this stream).
  Timestamp MaxDelay() const { return delays_.max_us(); }

  /// Fraction of arrivals with delay <= `lag` (the accuracy a fixed
  /// watermark lag of `lag` would have achieved on this history).
  double CoverageAt(Timestamp lag) const {
    return delays_.FractionBelow(lag);
  }

  Timestamp max_seen() const { return max_seen_; }
  uint64_t observed() const { return delays_.count(); }

 private:
  Timestamp max_seen_ = kMinTimestamp;
  LatencyRecorder delays_;  // reused as a generic log-bucket histogram
};

/// Watermark tracker with an adaptive, quantile-driven lag instead of a
/// fixed lateness: wm = max_seen − (DelayQuantile(q) × safety + 1).
/// The +1 covers the strict-inequality convention of the engines, and
/// `min_lag_us` bounds the lag from below while the estimate warms up.
class AdaptiveWatermarkTracker {
 public:
  struct Options {
    double quantile = 0.999;     ///< target fraction of tuples covered
    double safety_factor = 2.0;  ///< headroom over the observed quantile
    Timestamp min_lag_us = 10;   ///< floor while the estimate warms up
    uint64_t warmup_tuples = 256;
  };

  AdaptiveWatermarkTracker() : AdaptiveWatermarkTracker(Options{}) {}
  explicit AdaptiveWatermarkTracker(const Options& options)
      : options_(options) {}

  /// Returns true when the arrival violated the previously emitted
  /// watermark (i.e. an exact engine would have treated it as too late —
  /// the accuracy loss of the adaptive policy).
  bool Observe(Timestamp ts) {
    const bool violation =
        last_emitted_ != kMinTimestamp && ts < last_emitted_;
    if (violation) ++violations_;
    estimator_.Observe(ts);
    return violation;
  }

  /// Current adaptive watermark. Also remembers it as "emitted" so later
  /// violations are counted against it.
  Timestamp Emit() {
    last_emitted_ = watermark();
    return last_emitted_;
  }

  Timestamp watermark() const {
    if (estimator_.max_seen() == kMinTimestamp) return kMinTimestamp;
    return estimator_.max_seen() - CurrentLag();
  }

  /// The lag currently applied.
  Timestamp CurrentLag() const {
    Timestamp lag = static_cast<Timestamp>(
        static_cast<double>(estimator_.DelayQuantile(options_.quantile)) *
        options_.safety_factor);
    if (estimator_.observed() < options_.warmup_tuples ||
        lag < options_.min_lag_us) {
      // Warmup / floor: do not trust a thin sample.
      lag = std::max(lag, std::max(options_.min_lag_us,
                                   estimator_.MaxDelay()));
    }
    return lag + 1;
  }

  uint64_t violations() const { return violations_; }
  const DisorderEstimator& estimator() const { return estimator_; }

 private:
  Options options_;
  DisorderEstimator estimator_;
  Timestamp last_emitted_ = kMinTimestamp;
  uint64_t violations_ = 0;
};

}  // namespace oij

#endif  // OIJ_STREAM_DISORDER_ESTIMATOR_H_
