#include "stream/presets.h"

namespace oij {

namespace {
constexpr Timestamp kSecond = 1'000'000;  // one second in microseconds
}  // namespace

WorkloadSpec WorkloadA() {
  WorkloadSpec w;
  w.name = "A";
  w.num_keys = 5;
  w.window = IntervalWindow{1 * kSecond, 0};
  w.lateness_us = 1 * kSecond;
  // ~4000 matches per window: probe density per key = 4000/s, so with 5
  // keys R carries 20 K/s of the 120 K/s total.
  w.event_rate_per_sec = 120'000;
  w.pace_rate_per_sec = 120'000;
  w.probe_fraction = 20'000.0 / 120'000.0;
  // ~400 tuples arrive within the lateness range: bound the injected
  // disorder to a tenth of the lateness budget.
  w.disorder_bound_us = w.lateness_us / 10;
  w.total_tuples = 600'000;
  return w;
}

WorkloadSpec WorkloadB() {
  WorkloadSpec w;
  w.name = "B";
  w.num_keys = 111;
  w.window = IntervalWindow{150 * kSecond, 0};
  w.lateness_us = 10 * kSecond;
  // ~6000 matches per window: probe density per key = 40/s, so R carries
  // 40 * 111 = 4.44 K/s of the 200 K/s total.
  w.event_rate_per_sec = 200'000;
  w.pace_rate_per_sec = 200'000;
  w.probe_fraction = 4'440.0 / 200'000.0;
  w.disorder_bound_us = w.lateness_us;
  w.total_tuples = 1'000'000;
  return w;
}

WorkloadSpec WorkloadC() {
  WorkloadSpec w;
  w.name = "C";
  w.num_keys = 45;
  w.window = IntervalWindow{8 * kSecond, 0};
  w.lateness_us = 100 * kSecond;
  // Medium window population (~400 matches: 50/s per key over 8 s) but a
  // very large lateness range (~5000 per key over 100 s) — the regime
  // where full scans visit mostly out-of-window data.
  w.event_rate_per_sec = 100'000;
  w.pace_rate_per_sec = 0;  // "infinite" arrival rate: unthrottled
  w.probe_fraction = 2'250.0 / 100'000.0;
  w.disorder_bound_us = w.lateness_us;
  w.total_tuples = 1'000'000;
  return w;
}

WorkloadSpec WorkloadD() {
  WorkloadSpec w = WorkloadA();
  w.name = "D";
  w.event_rate_per_sec = 15'000;
  w.pace_rate_per_sec = 15'000;
  // Same per-window density shape as A, scaled to the lower rate.
  w.probe_fraction = 2'500.0 / 15'000.0;
  w.lateness_us = 2 * kSecond;
  w.disorder_bound_us = w.lateness_us / 10;
  w.total_tuples = 150'000;
  return w;
}

WorkloadSpec DefaultSynthetic() {
  WorkloadSpec w;
  w.name = "default";
  w.num_keys = 100;
  w.window = IntervalWindow{1000, 0};  // |w| = 1000 us
  w.lateness_us = 100;
  w.disorder_bound_us = 100;
  w.event_rate_per_sec = 1'000'000;
  w.pace_rate_per_sec = 0;
  w.probe_fraction = 0.5;
  w.total_tuples = 1'000'000;
  return w;
}

WorkloadSpec AdversarialSynthetic() {
  WorkloadSpec w = DefaultSynthetic();
  w.name = "adversarial";
  w.num_keys = 1000;
  w.window = IntervalWindow{100, 0};  // |w| = 100 us
  w.lateness_us = 10;
  w.disorder_bound_us = 10;
  return w;
}

WorkloadSpec SkewedRotating() {
  WorkloadSpec w = DefaultSynthetic();
  w.name = "skewed";
  w.num_keys = 10'000;
  w.key_distribution = KeyDistribution::kRotatingHotSet;
  w.hot_set_size = 16;
  w.hot_fraction = 0.9;
  w.hot_rotation_period_us = 100'000;
  return w;
}

std::vector<WorkloadSpec> RealWorkloads() {
  return {WorkloadA(), WorkloadB(), WorkloadC(), WorkloadD()};
}

bool FindPreset(std::string_view name, WorkloadSpec* out) {
  if (name == "A" || name == "a") {
    *out = WorkloadA();
  } else if (name == "B" || name == "b") {
    *out = WorkloadB();
  } else if (name == "C" || name == "c") {
    *out = WorkloadC();
  } else if (name == "D" || name == "d") {
    *out = WorkloadD();
  } else if (name == "default") {
    *out = DefaultSynthetic();
  } else if (name == "adversarial") {
    *out = AdversarialSynthetic();
  } else if (name == "skewed") {
    *out = SkewedRotating();
  } else {
    return false;
  }
  return true;
}

}  // namespace oij
