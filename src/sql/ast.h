#ifndef OIJ_SQL_AST_H_
#define OIJ_SQL_AST_H_

#include <cstdint>
#include <string>
#include <vector>

namespace oij {

/// Window bound: a relative offset in microseconds, or CURRENT ROW (0).
struct WindowBound {
  int64_t offset_us = 0;
  bool current_row = false;
};

/// Parse result of one window-union OIJ query, e.g.
///
///   SELECT sum(col2) OVER w1 FROM S
///   WINDOW w1 AS (
///     UNION R
///     PARTITION BY key ORDER BY timestamp
///     ROWS_RANGE BETWEEN 1s PRECEDING AND CURRENT ROW
///     LATENESS 100ms);
///
/// LATENESS is this library's streaming extension (OpenMLDB's batch SQL
/// has no disorder bound; a streaming OIJ needs one — Section II-B).
/// One SELECT-list item: <func>(<column>).
struct SelectItem {
  std::string func;
  std::string column;
};

struct ParsedQuery {
  std::string agg_func;     ///< first select item's function
  std::string agg_column;   ///< first select item's column
  /// The full (possibly multi-aggregate) select list; selects[0]
  /// duplicates agg_func/agg_column.
  std::vector<SelectItem> selects;
  std::string base_table;   ///< FROM <base>   (stream S)
  std::string window_name;  ///< OVER <name> == WINDOW <name>
  std::string probe_table;  ///< UNION <probe> (stream R)
  std::string partition_column;
  std::string order_column;
  WindowBound preceding;
  WindowBound following;
  int64_t lateness_us = -1;  ///< -1: not specified
};

}  // namespace oij

#endif  // OIJ_SQL_AST_H_
