#include "sql/parser.h"

#include <vector>

#include "sql/lexer.h"

namespace oij {

namespace {

/// Token-stream cursor with typed expectation helpers.
class Cursor {
 public:
  explicit Cursor(const std::vector<Token>& tokens) : tokens_(tokens) {}

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_ + 1 < tokens_.size() ? pos_++ : pos_]; }

  bool MatchKeyword(std::string_view kw) {
    if (Peek().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectKeyword(std::string_view kw) {
    if (MatchKeyword(kw)) return Status::OK();
    return Error(std::string("expected ") + std::string(kw));
  }

  Status ExpectType(TokenType type, const Token** out) {
    if (Peek().type == type) {
      *out = &Advance();
      return Status::OK();
    }
    return Error(std::string("expected ") + std::string(TokenTypeName(type)));
  }

  Status ExpectIdentifier(std::string* out) {
    const Token* tok = nullptr;
    Status s = ExpectType(TokenType::kIdentifier, &tok);
    if (!s.ok()) return s;
    *out = tok->text;
    return Status::OK();
  }

  Status Error(const std::string& what) const {
    return Status::ParseError(what + " but found '" + Peek().text +
                              "' at offset " + std::to_string(Peek().offset));
  }

 private:
  const std::vector<Token>& tokens_;
  size_t pos_ = 0;
};

/// bound := <duration> (PRECEDING | FOLLOWING)
///        | <number>   (PRECEDING | FOLLOWING)   -- bare number: ms
///        | CURRENT ROW
Status ParseBound(Cursor& cur, bool expect_preceding, WindowBound* out) {
  if (cur.MatchKeyword("CURRENT")) {
    Status s = cur.ExpectKeyword("ROW");
    if (!s.ok()) return s;
    out->current_row = true;
    out->offset_us = 0;
    return Status::OK();
  }
  const Token& tok = cur.Peek();
  int64_t us = 0;
  if (tok.type == TokenType::kDuration) {
    us = tok.value;
    cur.Advance();
  } else if (tok.type == TokenType::kNumber) {
    us = tok.value * 1000;  // OpenMLDB ROWS_RANGE default unit: ms
    cur.Advance();
  } else {
    return cur.Error("expected window bound");
  }
  Status s = cur.ExpectKeyword(expect_preceding ? "PRECEDING" : "FOLLOWING");
  if (!s.ok()) return s;
  out->offset_us = us;
  out->current_row = false;
  return Status::OK();
}

Status ParseWindowDefinition(Cursor& cur, ParsedQuery* out) {
  Status s = cur.ExpectKeyword("UNION");
  if (!s.ok()) return s;
  s = cur.ExpectIdentifier(&out->probe_table);
  if (!s.ok()) return s;

  s = cur.ExpectKeyword("PARTITION");
  if (!s.ok()) return s;
  s = cur.ExpectKeyword("BY");
  if (!s.ok()) return s;
  s = cur.ExpectIdentifier(&out->partition_column);
  if (!s.ok()) return s;

  s = cur.ExpectKeyword("ORDER");
  if (!s.ok()) return s;
  s = cur.ExpectKeyword("BY");
  if (!s.ok()) return s;
  s = cur.ExpectIdentifier(&out->order_column);
  if (!s.ok()) return s;

  s = cur.ExpectKeyword("ROWS_RANGE");
  if (!s.ok()) return s;
  s = cur.ExpectKeyword("BETWEEN");
  if (!s.ok()) return s;
  s = ParseBound(cur, /*expect_preceding=*/true, &out->preceding);
  if (!s.ok()) return s;
  s = cur.ExpectKeyword("AND");
  if (!s.ok()) return s;
  s = ParseBound(cur, /*expect_preceding=*/false, &out->following);
  if (!s.ok()) return s;

  // Streaming extension: LATENESS <duration>.
  if (cur.MatchKeyword("LATENESS")) {
    const Token* tok = nullptr;
    if (cur.Peek().type == TokenType::kDuration) {
      s = cur.ExpectType(TokenType::kDuration, &tok);
      if (!s.ok()) return s;
      out->lateness_us = tok->value;
    } else {
      s = cur.ExpectType(TokenType::kNumber, &tok);
      if (!s.ok()) return s;
      out->lateness_us = tok->value * 1000;
    }
  }
  return Status::OK();
}

}  // namespace

Status ParseQuery(std::string_view sql, ParsedQuery* out) {
  *out = ParsedQuery{};
  std::vector<Token> tokens;
  Status s = Tokenize(sql, &tokens);
  if (!s.ok()) return s;
  Cursor cur(tokens);

  // SELECT <agg>(<col>) [, <agg>(<col>)]... OVER <w> FROM <base>
  s = cur.ExpectKeyword("SELECT");
  if (!s.ok()) return s;
  const Token* tok = nullptr;
  do {
    SelectItem item;
    s = cur.ExpectIdentifier(&item.func);
    if (!s.ok()) return s;
    s = cur.ExpectType(TokenType::kLParen, &tok);
    if (!s.ok()) return s;
    s = cur.ExpectIdentifier(&item.column);
    if (!s.ok()) return s;
    s = cur.ExpectType(TokenType::kRParen, &tok);
    if (!s.ok()) return s;
    out->selects.push_back(std::move(item));
  } while (cur.Peek().type == TokenType::kComma && (cur.Advance(), true));
  out->agg_func = out->selects.front().func;
  out->agg_column = out->selects.front().column;
  s = cur.ExpectKeyword("OVER");
  if (!s.ok()) return s;
  s = cur.ExpectIdentifier(&out->window_name);
  if (!s.ok()) return s;
  s = cur.ExpectKeyword("FROM");
  if (!s.ok()) return s;
  s = cur.ExpectIdentifier(&out->base_table);
  if (!s.ok()) return s;

  // WINDOW <w> AS ( ... )
  s = cur.ExpectKeyword("WINDOW");
  if (!s.ok()) return s;
  std::string window_name;
  s = cur.ExpectIdentifier(&window_name);
  if (!s.ok()) return s;
  if (window_name != out->window_name) {
    return Status::ParseError("window '" + window_name +
                              "' does not match OVER clause '" +
                              out->window_name + "'");
  }
  s = cur.ExpectKeyword("AS");
  if (!s.ok()) return s;
  s = cur.ExpectType(TokenType::kLParen, &tok);
  if (!s.ok()) return s;
  s = ParseWindowDefinition(cur, out);
  if (!s.ok()) return s;
  s = cur.ExpectType(TokenType::kRParen, &tok);
  if (!s.ok()) return s;

  if (cur.Peek().type == TokenType::kSemicolon) cur.Advance();
  if (cur.Peek().type != TokenType::kEof) {
    return cur.Error("expected end of query");
  }
  return Status::OK();
}

}  // namespace oij
