#include "sql/binder.h"

#include "sql/parser.h"

namespace oij {

Status BindQuery(const ParsedQuery& parsed, QuerySpec* out) {
  QuerySpec spec;
  Status s = AggKindFromName(parsed.agg_func, &spec.agg);
  if (!s.ok()) return s;

  if (parsed.preceding.offset_us < 0 || parsed.following.offset_us < 0) {
    return Status::InvalidArgument("window offsets must be non-negative");
  }
  spec.window.pre = parsed.preceding.current_row ? 0 : parsed.preceding.offset_us;
  spec.window.fol = parsed.following.current_row ? 0 : parsed.following.offset_us;
  spec.lateness_us = parsed.lateness_us < 0 ? 0 : parsed.lateness_us;

  s = spec.Validate();
  if (!s.ok()) return s;
  *out = spec;
  return Status::OK();
}

Status CompileQuery(std::string_view sql, QuerySpec* out,
                    ParsedQuery* parsed_out) {
  ParsedQuery parsed;
  Status s = ParseQuery(sql, &parsed);
  if (!s.ok()) return s;
  s = BindQuery(parsed, out);
  if (!s.ok()) return s;
  if (parsed_out != nullptr) *parsed_out = parsed;
  return Status::OK();
}

}  // namespace oij
