#ifndef OIJ_SQL_LEXER_H_
#define OIJ_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/token.h"

namespace oij {

/// Tokenizer for the OpenMLDB window-union SQL dialect (Section II-A).
/// Keywords are recognized case-insensitively and canonicalized to upper
/// case; durations ("1s", "150ms", "100us", "2m", "1h") are folded into
/// microsecond kDuration tokens; a bare number in a window bound defaults
/// to milliseconds at bind time (OpenMLDB's ROWS_RANGE convention).
Status Tokenize(std::string_view sql, std::vector<Token>* out);

}  // namespace oij

#endif  // OIJ_SQL_LEXER_H_
