#include "sql/lexer.h"

#include <array>
#include <cctype>
#include <cstdlib>

namespace oij {

namespace {

constexpr std::array<std::string_view, 22> kKeywords = {
    "SELECT",   "FROM",      "WINDOW",   "AS",        "UNION",
    "PARTITION", "BY",       "ORDER",    "ROWS_RANGE", "BETWEEN",
    "AND",      "PRECEDING", "FOLLOWING", "OVER",     "CURRENT",
    "ROW",      "LATENESS",  "ROWS",     "OPEN",      "MAXSIZE",
    "INSTANCE_NOT_IN_WINDOW", "EXCLUDE",
};

bool IsKeyword(const std::string& upper) {
  for (std::string_view kw : kKeywords) {
    if (upper == kw) return true;
  }
  return false;
}

std::string ToUpper(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(
        static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
  return out;
}

/// Microseconds per unit suffix; 0 = unknown.
int64_t UnitToUs(std::string_view unit) {
  if (unit == "us") return 1;
  if (unit == "ms") return 1000;
  if (unit == "s") return 1'000'000;
  if (unit == "m") return 60LL * 1'000'000;
  if (unit == "h") return 3600LL * 1'000'000;
  if (unit == "d") return 86400LL * 1'000'000;
  return 0;
}

}  // namespace

Status Tokenize(std::string_view sql, std::vector<Token>* out) {
  out->clear();
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (c == '(') {
      tok.type = TokenType::kLParen;
      tok.text = "(";
      ++i;
    } else if (c == ')') {
      tok.type = TokenType::kRParen;
      tok.text = ")";
      ++i;
    } else if (c == ',') {
      tok.type = TokenType::kComma;
      tok.text = ",";
      ++i;
    } else if (c == ';') {
      tok.type = TokenType::kSemicolon;
      tok.text = ";";
      ++i;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      const int64_t number =
          std::strtoll(std::string(sql.substr(start, i - start)).c_str(),
                       nullptr, 10);
      // Optional unit suffix glued to the number: "1s", "150ms", "100us".
      size_t unit_start = i;
      while (i < n && std::isalpha(static_cast<unsigned char>(sql[i]))) ++i;
      const std::string_view unit = sql.substr(unit_start, i - unit_start);
      if (unit.empty()) {
        tok.type = TokenType::kNumber;
        tok.value = number;
      } else {
        const int64_t us = UnitToUs(unit);
        if (us == 0) {
          return Status::ParseError("unknown time unit '" +
                                    std::string(unit) + "' at offset " +
                                    std::to_string(unit_start));
        }
        tok.type = TokenType::kDuration;
        tok.value = number * us;
      }
      tok.text = std::string(sql.substr(start, i - start));
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      const std::string raw(sql.substr(start, i - start));
      const std::string upper = ToUpper(raw);
      if (IsKeyword(upper)) {
        tok.type = TokenType::kKeyword;
        tok.text = upper;
      } else {
        tok.type = TokenType::kIdentifier;
        tok.text = raw;
      }
    } else {
      return Status::ParseError("unexpected character '" +
                                std::string(1, c) + "' at offset " +
                                std::to_string(i));
    }
    out->push_back(std::move(tok));
  }
  Token eof;
  eof.type = TokenType::kEof;
  eof.offset = n;
  out->push_back(std::move(eof));
  return Status::OK();
}

}  // namespace oij
