#ifndef OIJ_SQL_BINDER_H_
#define OIJ_SQL_BINDER_H_

#include <string_view>

#include "common/status.h"
#include "core/query_spec.h"
#include "sql/ast.h"

namespace oij {

/// Lowers a parsed window-union query to an executable QuerySpec:
/// aggregate name -> AggKind, bounds -> (PRE, FOL) microseconds, LATENESS
/// -> lateness_us (0 when unspecified, i.e. the in-order assumption
/// OpenMLDB makes).
Status BindQuery(const ParsedQuery& parsed, QuerySpec* out);

/// Convenience: parse + bind in one call.
Status CompileQuery(std::string_view sql, QuerySpec* out,
                    ParsedQuery* parsed_out = nullptr);

}  // namespace oij

#endif  // OIJ_SQL_BINDER_H_
