#ifndef OIJ_SQL_PARSER_H_
#define OIJ_SQL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "sql/ast.h"

namespace oij {

/// Recursive-descent parser for the window-union OIJ dialect; see
/// ParsedQuery for the accepted grammar. Returns ParseError with the
/// offending offset on malformed input.
Status ParseQuery(std::string_view sql, ParsedQuery* out);

}  // namespace oij

#endif  // OIJ_SQL_PARSER_H_
