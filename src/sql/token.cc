#include "sql/token.h"

namespace oij {

std::string_view TokenTypeName(TokenType type) {
  switch (type) {
    case TokenType::kIdentifier:
      return "identifier";
    case TokenType::kKeyword:
      return "keyword";
    case TokenType::kNumber:
      return "number";
    case TokenType::kDuration:
      return "duration";
    case TokenType::kLParen:
      return "'('";
    case TokenType::kRParen:
      return "')'";
    case TokenType::kComma:
      return "','";
    case TokenType::kSemicolon:
      return "';'";
    case TokenType::kEof:
      return "end of input";
  }
  return "?";
}

}  // namespace oij
