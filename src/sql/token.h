#ifndef OIJ_SQL_TOKEN_H_
#define OIJ_SQL_TOKEN_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace oij {

enum class TokenType : uint8_t {
  kIdentifier = 0,
  kKeyword,
  kNumber,     ///< bare integer/decimal literal
  kDuration,   ///< number with a time-unit suffix, value held in microseconds
  kLParen,
  kRParen,
  kComma,
  kSemicolon,
  kEof,
};

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;     ///< raw text; keywords are upper-cased
  int64_t value = 0;    ///< kNumber: the literal; kDuration: microseconds
  size_t offset = 0;    ///< byte offset in the input (for error messages)

  bool IsKeyword(std::string_view kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
};

std::string_view TokenTypeName(TokenType type);

}  // namespace oij

#endif  // OIJ_SQL_TOKEN_H_
