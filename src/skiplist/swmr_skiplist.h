#ifndef OIJ_SKIPLIST_SWMR_SKIPLIST_H_
#define OIJ_SKIPLIST_SWMR_SKIPLIST_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <new>
#include <utility>

#include "common/random.h"
#include "ebr/epoch_manager.h"
#include "mem/node_arena.h"

namespace oij {

/// Single-Writer-Multiple-Reader (SWMR) skip-list — paper Section V-A2,
/// Algorithms 1 and 2.
///
/// Exactly one thread (the owner) may call Insert() and EvictBefore(); any
/// number of threads may concurrently Seek()/iterate without locks. The
/// publication protocol follows the paper: a new node's forward pointers
/// are filled with relaxed stores (the node is not yet reachable), then the
/// predecessors' pointers are flipped to it with release stores; readers
/// load every forward pointer with acquire, so a reachable node is always
/// fully initialized.
///
/// Duplicate keys are allowed (the second index layer keys by timestamp and
/// two tuples may share one); a new duplicate is inserted in front of the
/// existing run, matching Algorithm 2's `next.key >= key` predicate.
///
/// Eviction removes a *prefix* (everything below a bound). Removed nodes
/// keep their forward pointers, which lead back into the retained suffix,
/// so a reader that entered the prefix before the unlink finishes its scan
/// correctly; the nodes themselves are handed to the EpochManager and freed
/// only after every reader epoch has drained. Whether a reader is
/// *guaranteed to find* data near the bound is a protocol question answered
/// one level up (TimeTravelIndex / the joiners' published safe timestamps).
template <typename K, typename V>
class SwmrSkipList {
 public:
  static constexpr int kMaxHeight = 16;

  /// `ebr` + `owner_slot` are used to retire evicted nodes; pass nullptr
  /// for single-threaded use (nodes are then freed immediately).
  ///
  /// `arena` (the `pooled_alloc` path) moves node storage off the global
  /// heap onto the owner's slab arena and switches eviction from one
  /// EpochManager::Retire per node to one RetireBatch per evicted run.
  /// The arena must outlive both this list and `ebr` (see NodeArena's
  /// lifetime contract); with arena == nullptr behaviour is byte-for-byte
  /// the pre-arena heap path.
  explicit SwmrSkipList(EpochManager* ebr = nullptr, uint32_t owner_slot = 0,
                        uint64_t seed = 0x5eed, NodeArena* arena = nullptr)
      : ebr_(ebr), owner_slot_(owner_slot), arena_(arena), rng_(seed) {
    head_ = NewNode(K{}, V{}, kMaxHeight);
  }

  ~SwmrSkipList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->Next(0);
      DeleteNode(n, arena_);
      n = next;
    }
  }

  SwmrSkipList(const SwmrSkipList&) = delete;
  SwmrSkipList& operator=(const SwmrSkipList&) = delete;

  struct Node {
    K key;
    V value;
    int32_t height;

    Node* Next(int level) const {
      return next_[level].load(std::memory_order_acquire);
    }
    void SetNextRelaxed(int level, Node* n) {
      next_[level].store(n, std::memory_order_relaxed);
    }
    void SetNextRelease(int level, Node* n) {
      next_[level].store(n, std::memory_order_release);
    }

    // Variable-length tail: next_[0 .. height-1] are valid.
    std::atomic<Node*> next_[1];
  };

  /// Read-side cursor. Valid while the reader's epoch guard is held.
  class Iterator {
   public:
    Iterator() = default;
    explicit Iterator(const Node* node) : node_(node) {}

    bool Valid() const { return node_ != nullptr; }
    const K& key() const { return node_->key; }
    const V& value() const { return node_->value; }
    void Next() { node_ = node_->Next(0); }

    /// Software-prefetches the successor node's cache line so it is
    /// warm by the time Next()+value() touch it — the gather walks of
    /// the columnar batch kernels (src/col/sweep_merge.h) call this
    /// while copying the current node out. The level-0 link load is
    /// the same acquire Next() will perform, so publication safety is
    /// unchanged; prefetching the resulting address is purely a hint.
    void PrefetchSuccessor() const {
#if defined(__GNUC__) || defined(__clang__)
      if (node_ != nullptr) {
        __builtin_prefetch(node_->Next(0), /*rw=*/0, /*locality=*/3);
      }
#endif
    }

   private:
    const Node* node_ = nullptr;
  };

  /// Inserts (owner thread only). Paper Algorithm 2.
  void Insert(const K& key, const V& value) {
    Node* pre[kMaxHeight];
    Node* node = head_;
    int level = kMaxHeight - 1;
    // Find, per level, the last node with key < new key.
    while (true) {
      Node* next = node->Next(level);
      if (next == nullptr || !(next->key < key)) {
        pre[level] = node;
        if (level == 0) break;
        --level;
      } else {
        node = next;
      }
    }
    const int height = RandomHeight();
    Node* new_node = NewNode(key, value, height);
    for (int i = 0; i < height; ++i) {
      // Not yet reachable: relaxed is enough (Alg. 2 lines 13-14).
      new_node->SetNextRelaxed(i, pre[i]->Next(i));
    }
    for (int i = 0; i < height; ++i) {
      // Atomically publish (Alg. 2 lines 15-16).
      pre[i]->SetNextRelease(i, new_node);
    }
    size_.fetch_add(1, std::memory_order_relaxed);
  }

  /// First node with key >= `key` (or invalid). Paper Algorithm 1
  /// generalized to a lower-bound seek, which is what range scans need.
  Iterator SeekGE(const K& key) const {
    const Node* node = head_;
    int level = kMaxHeight - 1;
    while (true) {
      const Node* next = node->Next(level);
      if (next == nullptr || !(next->key < key)) {
        if (level == 0) return Iterator(next);
        --level;
      } else {
        node = next;
      }
    }
  }

  /// First node in list order.
  Iterator Begin() const { return Iterator(head_->Next(0)); }

  /// Pointer to the value of the first node whose key equals `key`, or
  /// nullptr. The pointee is stable for the node's lifetime.
  V* FindEqual(const K& key) const {
    Iterator it = SeekGE(key);
    if (it.Valid() && !(key < it.key())) {
      return const_cast<V*>(&it.value());
    }
    return nullptr;
  }

  /// Unlinks every node with key < `bound` (owner thread only) and retires
  /// them through the EpochManager. Returns the number of nodes removed.
  /// `on_remove` is invoked for each removed node's key/value before the
  /// unlink becomes visible (used by callers that keep side statistics).
  template <typename Fn>
  size_t EvictBefore(const K& bound, Fn&& on_remove) {
    Node* old_first = head_->Next(0);
    if (old_first == nullptr || !(old_first->key < bound)) return 0;

    // Per level, the first *retained* node is the first with key >= bound.
    for (int level = kMaxHeight - 1; level >= 0; --level) {
      Node* next = head_->Next(level);
      while (next != nullptr && next->key < bound) {
        next = next->Next(level);
      }
      head_->SetNextRelease(level, next);
    }

    // Walk the removed prefix (still linked) and retire it. The prefix's
    // level-0 chain is left untouched — readers inside it still need the
    // forward pointers — which also makes it a ready-made intrusive run:
    // with an arena the whole prefix is retired as one RetireBatch entry
    // instead of `removed` std::function deleters.
    size_t removed = 0;
    Node* n = old_first;
    while (n != nullptr && n->key < bound) {
      Node* next = n->Next(0);
      on_remove(n->key, n->value);
      if (ebr_ == nullptr) {
        DeleteNode(n, arena_);
      } else if (arena_ == nullptr) {
        ebr_->Retire(owner_slot_, [n] { DeleteNode(n, nullptr); });
      }
      ++removed;
      n = next;
    }
    if (ebr_ != nullptr && arena_ != nullptr && removed > 0) {
      ebr_->RetireBatch(owner_slot_, old_first, removed, &DrainRetiredRun,
                        arena_);
    }
    size_.fetch_sub(removed, std::memory_order_relaxed);
    return removed;
  }

  size_t EvictBefore(const K& bound) {
    return EvictBefore(bound, [](const K&, const V&) {});
  }

  /// Approximate element count (exact when quiescent).
  size_t size() const { return size_.load(std::memory_order_relaxed); }
  bool empty() const { return size() == 0; }

  /// Bytes a node of `height` occupies (allocation and free must agree).
  static size_t NodeBytes(int height) {
    return sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1);
  }

 private:
  Node* NewNode(const K& key, const V& value, int height) {
    const size_t bytes = NodeBytes(height);
    void* mem =
        arena_ != nullptr ? arena_->Allocate(bytes) : ::operator new(bytes);
    Node* n = static_cast<Node*>(mem);
    new (&n->key) K(key);
    new (&n->value) V(value);
    n->height = height;
    for (int i = 0; i < height; ++i) {
      new (&n->next_[i]) std::atomic<Node*>(nullptr);
    }
    return n;
  }

  static void DeleteNode(Node* n, NodeArena* arena) {
    const size_t bytes = NodeBytes(n->height);
    n->key.~K();
    n->value.~V();
    if (arena != nullptr) {
      arena->Deallocate(static_cast<void*>(n), bytes);
    } else {
      ::operator delete(static_cast<void*>(n));
    }
  }

  /// EpochManager::DrainFn for a retired eviction run: the chain is the
  /// prefix's own level-0 pointers, so read each node's successor before
  /// freeing it. Walks exactly `count` nodes — the chain's tail pointer
  /// leads into memory this run does not own (the retained suffix, or a
  /// later-retired run).
  static void DrainRetiredRun(void* head, size_t count, void* ctx) {
    Node* n = static_cast<Node*>(head);
    NodeArena* arena = static_cast<NodeArena*>(ctx);
    for (size_t i = 0; i < count; ++i) {
      Node* next = n->Next(0);
      DeleteNode(n, arena);
      n = next;
    }
  }

  int RandomHeight() {
    // Branching factor 4 (RocksDB-style): P(height > h) = 4^-h.
    int height = 1;
    while (height < kMaxHeight && rng_.NextBelow(4) == 0) ++height;
    return height;
  }

  EpochManager* ebr_;
  uint32_t owner_slot_;
  NodeArena* arena_;
  Rng rng_;
  Node* head_;
  std::atomic<size_t> size_{0};
};

}  // namespace oij

#endif  // OIJ_SKIPLIST_SWMR_SKIPLIST_H_
