#ifndef OIJ_SKIPLIST_TIME_TRAVEL_INDEX_H_
#define OIJ_SKIPLIST_TIME_TRAVEL_INDEX_H_

#include <atomic>
#include <cstddef>
#include <memory>

#include "common/types.h"
#include "ebr/epoch_manager.h"
#include "mem/node_arena.h"
#include "skiplist/swmr_skiplist.h"

namespace oij {

/// The time-travel data structure — paper Section V-A1, Figure 10.
///
/// A double-layered skip-list: the first layer maps key -> second-layer
/// list; each second layer orders that key's tuples by timestamp. Locating
/// a window boundary costs O(log N_key) + O(log N_ts) and the scan then
/// touches *only* in-window tuples — this is what makes lateness
/// insignificant to Scale-OIJ (Finding 3), where Key-OIJ must filter the
/// whole unsorted buffer.
///
/// Concurrency contract (SWMR): exactly one owner thread calls Insert()
/// and EvictBefore(); other threads may scan concurrently while holding an
/// EpochGuard on the shared EpochManager. Second-layer lists are created
/// on first insert of a key and published through the first layer with the
/// same release/acquire protocol as any node, so readers never observe a
/// half-built layer. First-layer entries are never removed (their count is
/// bounded by the number of distinct keys).
class TimeTravelIndex {
 public:
  using SecondLayer = SwmrSkipList<Timestamp, Tuple>;
  using FirstLayer = SwmrSkipList<Key, SecondLayer*>;

  /// Pass nullptr `ebr` for single-threaded use. With `arena` set (the
  /// `pooled_alloc` path) every node of every layer — and the second-layer
  /// list objects themselves — live on the owner's slab arena, which must
  /// outlive both this index and `ebr`.
  explicit TimeTravelIndex(EpochManager* ebr = nullptr,
                           uint32_t owner_slot = 0, uint64_t seed = 0x71e,
                           NodeArena* arena = nullptr)
      : ebr_(ebr), owner_slot_(owner_slot), seed_(seed), arena_(arena),
        first_layer_(ebr, owner_slot, seed, arena) {}

  ~TimeTravelIndex() {
    for (auto it = first_layer_.Begin(); it.Valid(); it.Next()) {
      SecondLayer* layer = it.value();
      if (arena_ != nullptr) {
        layer->~SecondLayer();
        arena_->Deallocate(layer, sizeof(SecondLayer));
      } else {
        delete layer;
      }
    }
  }

  TimeTravelIndex(const TimeTravelIndex&) = delete;
  TimeTravelIndex& operator=(const TimeTravelIndex&) = delete;

  /// Inserts a tuple (owner thread only). Bursty keys hit the MRU cache
  /// and skip the first-layer seek entirely: first-layer entries are never
  /// unlinked and second layers are only destroyed with the whole index,
  /// so a cached layer can never dangle — even after EvictBefore() empties
  /// it, it is still the live layer for its key.
  void Insert(const Tuple& t) {
    SecondLayer* layer = (mru_layer_ != nullptr && mru_key_ == t.key)
                             ? mru_layer_
                             : GetOrCreateLayer(t.key);
    layer->Insert(t.ts, t);
    size_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Invokes `fn(tuple)` for every tuple of `key` with ts in
  /// [start, end] (inclusive, matching Definition 2). Returns the number
  /// of tuples visited, which for this index equals the number matched.
  /// Readers must hold an EpochGuard if the index is shared.
  template <typename Fn>
  size_t ForEachInRange(Key key, Timestamp start, Timestamp end,
                        Fn&& fn) const {
    SecondLayer* const* layer = first_layer_.FindEqual(key);
    if (layer == nullptr) return 0;
    size_t visited = 0;
    for (auto it = (*layer)->SeekGE(start); it.Valid() && it.key() <= end;
         it.Next()) {
      fn(it.value());
      ++visited;
    }
    return visited;
  }

  /// Invokes `fn(tuple)` for every resident tuple, ordered by key then
  /// timestamp (owner thread, or any reader holding an EpochGuard). The
  /// durability layer's snapshot walk: with `pooled_alloc` every node
  /// visited lives on the owner's contiguous NodeArena slabs, so the
  /// traversal stays cache-dense even at large index sizes.
  template <typename Fn>
  void ForEachTuple(Fn&& fn) const {
    for (auto it = first_layer_.Begin(); it.Valid(); it.Next()) {
      for (auto jt = it.value()->Begin(); jt.Valid(); jt.Next()) {
        fn(jt.value());
      }
    }
  }

  /// Evicts every tuple with ts < `bound` across all keys (owner only).
  /// Returns the number of tuples removed. Callers must only pass bounds
  /// proven safe against every concurrent reader (see the joiners'
  /// published safe timestamps in join/scale_oij.h).
  size_t EvictBefore(Timestamp bound) {
    size_t removed = 0;
    for (auto it = first_layer_.Begin(); it.Valid(); it.Next()) {
      removed += it.value()->EvictBefore(bound);
    }
    size_.fetch_sub(removed, std::memory_order_relaxed);
    if (ebr_ != nullptr) ebr_->ReclaimSome(owner_slot_);
    return removed;
  }

  /// Total resident tuples (approximate under concurrency).
  size_t size() const { return size_.load(std::memory_order_relaxed); }

  /// Number of distinct keys ever inserted.
  size_t key_count() const { return first_layer_.size(); }

  /// Second layer for `key`, or nullptr (advanced callers: incremental
  /// aggregation seeks the same layer several times).
  SecondLayer* FindLayer(Key key) const {
    SecondLayer* const* layer = first_layer_.FindEqual(key);
    return layer == nullptr ? nullptr : *layer;
  }

 private:
  SecondLayer* GetOrCreateLayer(Key key) {
    SecondLayer* const* existing = first_layer_.FindEqual(key);
    SecondLayer* layer;
    if (existing != nullptr) {
      layer = *existing;
    } else {
      // Single writer: no race between the miss above and this insert.
      const uint64_t seed = seed_ ^ (key * 0x9e3779b97f4a7c15ULL);
      if (arena_ != nullptr) {
        void* mem = arena_->Allocate(sizeof(SecondLayer));
        layer = new (mem) SecondLayer(ebr_, owner_slot_, seed, arena_);
      } else {
        layer = new SecondLayer(ebr_, owner_slot_, seed);
      }
      first_layer_.Insert(key, layer);
    }
    // Owner-only field: readers go through ForEachInRange/FindLayer and
    // never see the cache.
    mru_key_ = key;
    mru_layer_ = layer;
    return layer;
  }

  EpochManager* ebr_;
  uint32_t owner_slot_;
  uint64_t seed_;
  NodeArena* arena_;
  FirstLayer first_layer_;
  Key mru_key_ = 0;
  SecondLayer* mru_layer_ = nullptr;
  std::atomic<size_t> size_{0};
};

}  // namespace oij

#endif  // OIJ_SKIPLIST_TIME_TRAVEL_INDEX_H_
