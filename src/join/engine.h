#ifndef OIJ_JOIN_ENGINE_H_
#define OIJ_JOIN_ENGINE_H_

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/fault_injector.h"
#include "common/spsc_queue.h"
#include "common/status.h"
#include "common/types.h"
#include "common/watchdog.h"
#include "core/query_catalog.h"
#include "core/query_spec.h"
#include "join/late_gate.h"
#include "metrics/breakdown.h"
#include "metrics/cache_sim.h"
#include "metrics/cpu_util.h"
#include "metrics/latency_recorder.h"
#include "sched/rebalancer.h"
#include "stream/generator.h"
#include "topo/topology.h"
#include "wal/wal.h"

namespace oij {

struct QueryRuntime;

/// Message flowing through a router -> joiner queue.
struct Event {
  enum class Kind : uint8_t {
    kTuple = 0,
    kWatermark,  ///< punctuation carrying the current low-watermark
    kFlush,      ///< end of stream: finalize everything and exit
    kSnapshot,   ///< durability barrier: write this joiner's snapshot
                 ///< shard for the epoch carried in `watermark`
    kAddQuery,   ///< catalog barrier: activate the standing query `query`
    kRemoveQuery,  ///< catalog barrier: deactivate `query`
  };

  Kind kind = Kind::kTuple;
  StreamId stream = StreamId::kBase;
  Tuple tuple;
  Timestamp watermark = kMinTimestamp;
  int64_t arrival_us = 0;  ///< router monotonic stamp (latency origin)
  uint64_t seq = 0;        ///< router-assigned global sequence number

  /// kAddQuery/kRemoveQuery: the catalog entry this barrier activates or
  /// retires. Carried by pointer so joiners never index the driver's
  /// catalog container concurrently with its growth.
  QueryRuntime* query = nullptr;

  /// Multi-query mode only: this tuple violated the lateness bound and
  /// was admitted solely for the best-effort queries; drop/side-channel
  /// queries must not observe it.
  bool late = false;
};

/// Runtime record of one standing query sharing an engine's index.
///
/// Entries live in a std::deque owned by the driver thread: growth never
/// moves existing entries, and a joiner reaches an entry only through the
/// pointer its kAddQuery barrier carried, so every field a joiner touches
/// is either immutable after construction (ord/id/spec) or atomic.
struct QueryRuntime {
  uint32_t ord = 0;
  std::string id;
  QuerySpec spec;
  bool active = true;                ///< driver-thread view
  std::atomic<uint64_t> results{0};  ///< bumped by joiners, relaxed
  LateStats late;                    ///< driver thread only
};

/// Point-in-time view of one standing query for the admin plane.
struct QueryStatsRow {
  uint32_t ord = 0;
  std::string id;
  QuerySpec spec;
  bool active = true;
  uint64_t results = 0;
  LateStats late;
};

/// Copies a fully materialized window's statistics into a result (the
/// multi-aggregate feature-set fields; see core/feature_set.h).
inline void FillWindowStats(JoinResult* result, const AggState& agg) {
  result->sum = agg.sum;
  if (agg.count > 0) {
    result->min = agg.min;
    result->max = agg.max;
  }
}

/// Receives finalized join results. May be invoked concurrently from
/// several joiner threads; implementations must be thread-safe.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void OnResult(const JoinResult& result) = 0;
};

/// Discards results (throughput benchmarks measure engine cost only).
class NullSink : public ResultSink {
 public:
  void OnResult(const JoinResult&) override {}
};

/// Collects every result under a mutex (tests, examples).
class CollectingSink : public ResultSink {
 public:
  void OnResult(const JoinResult& result) override {
    std::lock_guard<std::mutex> lock(mu_);
    results_.push_back(result);
  }

  std::vector<JoinResult> TakeResults() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::move(results_);
  }

 private:
  std::mutex mu_;
  std::vector<JoinResult> results_;
};

/// Counts results and checksums aggregates (cheap validation at scale).
class CountingSink : public ResultSink {
 public:
  void OnResult(const JoinResult& result) override {
    count_.fetch_add(1, std::memory_order_relaxed);
    matches_.fetch_add(result.match_count, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t matches() const {
    return matches_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> matches_{0};
};

/// What the router does with a tuple when a joiner's ring is full.
enum class OverloadPolicy : uint8_t {
  /// Wait (stop-token aware) until the ring drains: lossless, but a slow
  /// joiner backpressures the whole input. Seed behavior.
  kBlock = 0,
  /// Wait up to EngineOptions::drop_wait_us, then drop the incoming
  /// tuple. Bounds router latency; sheds the newest data first.
  kDropNewest,
  /// Stage overflow in a router-side spill buffer and shed the *oldest*
  /// buffered tuples beyond its capacity. Keeps the freshest data (the
  /// usual preference for real-time analytics); FIFO order and control
  /// events are preserved.
  kShedOldest,
};

std::string_view OverloadPolicyName(OverloadPolicy policy);

/// Engine construction knobs shared by all parallel engines. The Scale-OIJ
/// optimizations are individually switchable so the ablation benches can
/// isolate each one (time-travel indexing is what distinguishes Scale-OIJ
/// from Key-OIJ structurally, so it is a choice of engine, not a flag).
struct EngineOptions {
  uint32_t num_joiners = 4;

  /// Capacity of each router->joiner ring (events).
  uint32_t queue_capacity = 8192;

  /// --- Micro-batched router->joiner transport (DESIGN.md §5) ---

  /// Tuple events staged per joiner before the router flushes them into
  /// the ring with a single PushBatch (one shared cache-line update per
  /// batch instead of per tuple). 1 restores the per-tuple transport.
  /// Exactness is unaffected: staging preserves per-queue FIFO order and
  /// control events (watermark/flush) always flush the stage first, so
  /// punctuations still trail every tuple they gate. Internally capped at
  /// queue_capacity.
  uint32_t batch_size = 32;

  /// Upper bound on how long a staged tuple may wait for its batch to
  /// fill (checked against the driver's arrival stamps, so it costs no
  /// extra clock reads). 0 disables the timer; punctuations and
  /// FlushPending() still flush immediately.
  int64_t batch_flush_us = 500;

  /// Scale-OIJ: number of key hash-range partitions for scheduling.
  uint32_t num_partitions = 256;

  /// Scale-OIJ: enable the dynamic balanced schedule (Section V-B).
  bool dynamic_schedule = true;

  /// Scale-OIJ: enable incremental window aggregation (Section V-C).
  bool incremental_agg = true;

  /// Back the time-travel index with a per-joiner slab arena and chunked
  /// EBR retire instead of the global heap (DESIGN.md "Memory
  /// management"). Exactness is unaffected; only engines that use the
  /// index (Scale-OIJ, handshake) react — Key-OIJ/SplitJoin baselines
  /// stay byte-for-byte faithful either way.
  bool pooled_alloc = true;

  /// --- Columnar batch-join kernels (src/col/, DESIGN.md §5h) ---

  /// Let the joiners finalize drained base runs through the columnar
  /// batch kernels: transpose the ready bases into SoA columns, locate
  /// each key-group's window boundary in the index once, sweep the
  /// sorted run, and aggregate contiguous payload slices with
  /// SIMD/prefetch. Exactness is unaffected (differential-tested
  /// against the scalar path and the reference oracle across policies);
  /// off = byte-for-byte legacy per-tuple path.
  bool columnar_batch = true;

  /// Minimum ready bases in one drain before the columnar path engages;
  /// smaller runs take the scalar path (the transpose/sort overhead
  /// only amortizes at batch sizes around this default).
  uint32_t columnar_min_run = 16;

  /// Minimum bases in one sorted key-group before that group is swept
  /// columnar; smaller groups replay through the scalar kernel even
  /// inside a columnar drain. A group of one or two bases has nothing
  /// to amortize the per-group gather against (a run of N keys × 1 base
  /// would otherwise pay N gathers for zero sharing), so high-key-count
  /// batches degrade gracefully to the legacy cost instead of
  /// regressing. 0 or 1 sweeps every group.
  uint32_t columnar_min_group = 4;

  /// Scale-OIJ: router events between rebalance attempts.
  uint32_t rebalance_interval_events = 32768;

  RebalanceConfig rebalance;

  /// NUMA placement (src/topo/, DESIGN.md §5i): detect the machine's
  /// node topology, assign joiners to socket-sized teams, pin them,
  /// bind their arenas node-locally, and bias partition replication
  /// toward same-socket targets. `auto` (default) engages only when
  /// more than one node is detected — single-node machines see a strict
  /// no-op — and `explicit_cpus` overrides the derived map. Exactness
  /// is unaffected either way: placement moves threads and pages, never
  /// results.
  NumaOptions numa;

  /// Pin joiner threads to CPUs round-robin (legacy flat pinning;
  /// superseded by an active `numa` placement plan).
  bool pin_threads = false;

  /// Measure per-joiner busy time (the denominator of the Fig 6 time
  /// breakdown). ~2 clock reads per processed burst.
  bool collect_breakdown = true;

  /// Record per-joiner utilization-over-time series (Fig 14).
  bool collect_cpu_util = false;
  int64_t cpu_util_interval_ns = 100'000'000;

  /// Feed sampled tuple accesses into a shared LLC model (Figs 8b/13d).
  CacheSim* cache_sim = nullptr;
  uint32_t cache_sample_period = 16;

  /// --- Overload & fault tolerance (see DESIGN.md, "Delivery &
  /// degradation semantics") ---

  OverloadPolicy overload_policy = OverloadPolicy::kBlock;

  /// kDropNewest: how long the router waits on a full ring before
  /// dropping the tuple. 0 = drop immediately.
  int64_t drop_wait_us = 0;

  /// kShedOldest: max tuples staged per joiner before the oldest staged
  /// tuples are shed. 0 defaults to queue_capacity.
  uint32_t shed_spill_capacity = 0;

  /// Receives tuples diverted by LatePolicy::kSideChannel (driver
  /// thread). Not owned.
  LateSink* late_sink = nullptr;

  /// Test-only deterministic fault hooks. Not owned; must outlive the
  /// engine. nullptr in production.
  const FaultInjector* fault_injector = nullptr;

  /// Monitor thread detecting stalled joiners / frozen watermarks.
  bool enable_watchdog = true;
  WatchdogConfig watchdog;

  /// Write-ahead logging + snapshots (src/wal/, DESIGN.md §5e). Off by
  /// default (empty wal_dir) — zero cost on the ingest path.
  DurabilityOptions durability;

  /// Upper bound on how long Finish() may block flushing and joining.
  /// On expiry the engine raises its stop token, reports
  /// DeadlineExceeded in EngineStats::health, and still returns.
  int64_t finish_timeout_us = 30'000'000;

  Status Validate() const;
};

/// Allocator observability for pooled_alloc runs (mem/node_arena.h),
/// summed across the engine's joiner arenas. All-zero with `pooled`
/// false (heap-backed run, or an engine without an index).
struct MemStats {
  bool pooled = false;
  uint64_t arena_reserved_bytes = 0;
  uint64_t arena_live_nodes = 0;
  uint64_t arena_allocations = 0;
  uint64_t arena_slab_recycles = 0;
  uint64_t arena_oversize_allocs = 0;
  /// Nodes retired to the EpochManager not yet drained at collection.
  uint64_t ebr_retired_backlog = 0;
};

/// Everything a run reports; merged across joiners at Finish().
struct EngineStats {
  uint64_t input_tuples = 0;
  uint64_t results = 0;

  /// Tuples visited while locating window data vs tuples actually inside
  /// windows. effectiveness (Eq. 1) is the mean per-join-op ratio.
  uint64_t visited = 0;
  uint64_t matched = 0;
  double effectiveness_sum = 0.0;
  uint64_t join_ops = 0;

  TimeBreakdown breakdown;
  LatencyRecorder latency;

  /// Tuples processed per joiner: actual load distribution.
  std::vector<uint64_t> per_joiner_processed;

  /// Per-joiner utilization series (only when collect_cpu_util).
  std::vector<std::vector<double>> utilization;

  uint64_t rebalances = 0;
  uint64_t final_schedule_version = 0;
  uint64_t evicted_tuples = 0;
  uint64_t peak_buffered_tuples = 0;

  /// Columnar batch kernel engagement (src/col/): base tuples finalized
  /// through the sweep path, key-groups swept, and groups that bounced
  /// back to the scalar path (non-finite payloads).
  uint64_t columnar_bases = 0;
  uint64_t columnar_groups = 0;
  uint64_t columnar_fallbacks = 0;

  /// Tuples lost to backpressure (kDropNewest + kShedOldest combined;
  /// `overload_shed` is the kShedOldest share).
  uint64_t overload_dropped = 0;
  uint64_t overload_shed = 0;
  std::vector<uint64_t> per_joiner_overload_dropped;

  /// Control events (watermark/flush punctuations) that could not be
  /// delivered to a joiner because the stop token was raised or a
  /// deadline expired. A lost watermark silently freezes downstream
  /// eviction and finalization, so any loss also surfaces a warning,
  /// marking the run non-pristine.
  uint64_t control_lost = 0;
  std::vector<uint64_t> per_joiner_control_lost;

  /// Lateness-bound violations and their disposition.
  LateStats late;

  /// Allocator observability (pooled_alloc runs).
  MemStats mem;

  /// NUMA placement observability (src/topo/, DESIGN.md §5i).
  /// `numa_active` is true when a placement plan pinned this run;
  /// the per-node arrays are indexed by node ordinal (empty for
  /// engines without arenas). The cross counters tally scheduler
  /// decisions that crossed a socket: partition replications the
  /// rebalancer accepted onto a remote node after same-node headroom
  /// ran out, and round-robin tuple dispatches that left the team
  /// leader's node.
  bool numa_active = false;
  uint32_t numa_nodes = 1;
  std::vector<int> numa_pin_cpus;          ///< per joiner; -1 = unpinned
  std::vector<uint32_t> numa_joiner_node;  ///< per joiner: node ordinal
  std::vector<uint64_t> numa_node_arena_bytes;
  std::vector<uint64_t> numa_node_arena_live_nodes;
  uint64_t numa_cross_replications = 0;
  uint64_t numa_cross_dispatches = 0;

  /// Durability counters (all-zero with durability off).
  WalStats wal;

  /// OK on a clean run; ResourceExhausted / DeadlineExceeded when the
  /// watchdog or the Finish deadline aborted it.
  Status health;
  std::vector<std::string> warnings;

  double Effectiveness() const {
    return join_ops == 0 ? 1.0
                         : effectiveness_sum / static_cast<double>(join_ops);
  }

  /// Coefficient of variation of the actual per-joiner processed counts
  /// (the measured counterpart of Eq. 2).
  double ActualUnbalancedness() const;
};

/// A parallel online interval join engine.
///
/// Protocol: Start() once; then, from a single driver thread, any number
/// of Push()/SignalWatermark() calls; then Finish() exactly once, which
/// drains, stops the joiners, and returns the merged statistics.
class JoinEngine {
 public:
  virtual ~JoinEngine() = default;

  virtual Status Start() = 0;

  /// Feeds one arrival. `arrival_us` is the monotonic stamp used as the
  /// latency origin. Single driver thread only.
  virtual void Push(const StreamEvent& event, int64_t arrival_us) = 0;

  /// Injects a watermark punctuation (driver thread).
  virtual void SignalWatermark(Timestamp watermark) = 0;

  /// --- Standing-query catalog (driver thread) ---
  ///
  /// Registers one more standing query sharing this engine's index: one
  /// insert per tuple, a window read per active query. The new query must
  /// share the primary query's lateness bound and emit mode (so "late" is
  /// a global property of a tuple); window, aggregate, and late policy
  /// are free. It covers base tuples pushed after the call returns — the
  /// catalog change rides the joiner control rings like a snapshot
  /// barrier, so its first finalized window is exact.
  virtual Status AddQuery(std::string_view /*id*/, const QuerySpec&) {
    return Status::FailedPrecondition(
        "this engine does not support a standing-query catalog");
  }

  /// Deactivates a standing query: base tuples pushed after the call no
  /// longer enter it, while windows already pending finalize normally
  /// (draining removal). The primary query cannot be removed.
  virtual Status RemoveQuery(std::string_view /*id*/) {
    return Status::FailedPrecondition(
        "this engine does not support a standing-query catalog");
  }

  /// Catalog contents + per-query counters (driver thread).
  virtual std::vector<QueryStatsRow> QuerySnapshot() const { return {}; }

  /// Flushes any router-side staged batches into the joiner rings
  /// (driver thread). The pipeline calls this before blocking on the
  /// pacer so staged tuples are never held across an idle gap; no-op for
  /// engines without staging.
  virtual void FlushPending() {}

  virtual EngineStats Finish() = 0;

  /// Durability barrier (driver thread): flushes staged batches and
  /// forces every appended WAL byte to disk regardless of the fsync
  /// policy. After Sync() returns, a crash loses nothing that was
  /// Push()ed before it. No-op for engines without a WAL.
  virtual void Sync() {}

  /// --- Crash recovery (driver thread, between Start() and the first
  /// Push) ---
  ///
  /// BeginRecovery() loads the latest committed snapshot + WAL suffix
  /// from EngineOptions::durability.wal_dir into a replay plan;
  /// RecoveryStep() replays up to `max_events` of it through the normal
  /// ingest path (replayed tuples are just "late" tuples — the lateness
  /// machinery makes recovery exact) and returns true while more
  /// remains, so a server can interleave replay with answering admin
  /// probes. Engines without durability recover trivially.
  virtual Status BeginRecovery() { return Status::OK(); }
  virtual bool RecoveryStep(size_t /*max_events*/) { return false; }

  /// Convenience: BeginRecovery + drive RecoveryStep to completion.
  Status Recover();

  /// True while a recovery replay is in progress (any thread; the
  /// serving layer's /healthz answers 503 from this).
  virtual bool Recovering() const { return false; }

  /// Watermark the recovered state is complete through (driver thread,
  /// meaningful once recovery finished). kMinTimestamp unless the run
  /// recovered under DurabilityOptions::recover_to_watermark, in which
  /// case it is the watermark-consistent cut the replay stopped at —
  /// the value a server advertises in its hello reply so a router can
  /// resend exactly the un-acked suffix.
  virtual Timestamp RecoveredWatermark() const { return kMinTimestamp; }

  /// Live durability counters (any thread); all-zero without a WAL.
  virtual WalStats SampleWal() const { return WalStats{}; }

  /// Live health probe, callable from any thread while the engine runs:
  /// OK until the watchdog (or the Finish deadline) has escalated, then
  /// the escalation status. The serving layer's /healthz renders this.
  virtual Status Health() const { return Status::OK(); }

  /// Live progress snapshot, callable from any thread: per-joiner ring
  /// occupancy and consumed counters plus router-side accepted/watermark
  /// totals. Empty before Start(). The serving layer's /metrics renders
  /// this; engines without internal queues return the default.
  virtual WatchdogSample SampleProgress() const { return WatchdogSample{}; }

  virtual std::string_view name() const = 0;
};

/// Shared implementation for the queue-per-joiner engines (Key-OIJ,
/// Scale-OIJ, SplitJoin): thread lifecycle, punctuation broadcast, the
/// joiner event loop, and stats merging. Subclasses implement routing and
/// per-event processing.
class ParallelEngineBase : public JoinEngine {
 public:
  ParallelEngineBase(const QuerySpec& spec, const EngineOptions& options,
                     ResultSink* sink);
  ~ParallelEngineBase() override;

  Status Start() final;
  void Push(const StreamEvent& event, int64_t arrival_us) final;
  void SignalWatermark(Timestamp watermark) final;
  Status AddQuery(std::string_view id, const QuerySpec& spec) final;
  Status RemoveQuery(std::string_view id) final;
  std::vector<QueryStatsRow> QuerySnapshot() const final;
  void FlushPending() final;
  EngineStats Finish() final;
  void Sync() final;
  Status BeginRecovery() final;
  bool RecoveryStep(size_t max_events) final;
  bool Recovering() const final;
  Timestamp RecoveredWatermark() const final { return recovered_watermark_; }
  WalStats SampleWal() const final;
  Status Health() const final;
  WatchdogSample SampleProgress() const final;

  /// Test hook modeling kill -9: raises the stop token and tears the
  /// engine down with *no* final flush, drain or WAL sync — buffered
  /// WAL bytes are dropped exactly as a real crash would drop them.
  /// The engine is unusable afterwards; recovery happens in a fresh
  /// instance pointed at the same wal_dir.
  void CrashForTest();

 protected:
  /// Routes a tuple event to one or more queues (subclass).
  virtual void Route(const Event& event) = 0;

  /// Per-event processing on joiner `j` (subclass). kFlush is handled by
  /// the base loop after calling OnFlush.
  virtual void OnTuple(uint32_t joiner, const Event& event) = 0;
  virtual void OnWatermark(uint32_t joiner, Timestamp watermark) = 0;

  /// Whether this engine implements the standing-query catalog hooks.
  /// AddQuery refuses on engines that leave this false.
  virtual bool SupportsMultiQuery() const { return false; }

  /// Catalog barriers on joiner `j`'s thread, after the base has updated
  /// the joiner's catalog view: allocate / retire per-query joiner state.
  virtual void OnAddQuery(uint32_t /*joiner*/, QueryRuntime& /*query*/) {}
  virtual void OnRemoveQuery(uint32_t /*joiner*/, uint32_t /*ord*/) {}

  /// Called when the joiner's queue is momentarily empty; engines poll
  /// deferred work (pending base tuples waiting on teammates) here.
  virtual void OnIdle(uint32_t /*joiner*/) {}

  /// Final drain before the joiner thread exits.
  virtual void OnFlush(uint32_t /*joiner*/) {}

  /// Extra threads (e.g. SplitJoin's collector): started after joiners,
  /// stopped before stats collection.
  virtual void StartAuxiliary() {}
  virtual void StopAuxiliary() {}

  /// Subclass contribution to the merged stats (joiner-local counters).
  virtual void CollectStats(EngineStats* stats) = 0;

  /// Gathers joiner `j`'s live state for a snapshot epoch, called on the
  /// joiner thread when its kSnapshot control event arrives (so the
  /// state is a consistent cut: every earlier event is incorporated,
  /// none after). Emit probe-side tuples first, then unfinalized base
  /// tuples; re-Pushing them through normal ingest reconstructs the
  /// state. Return false when the engine cannot snapshot (the epoch is
  /// aborted and the log is simply never truncated — recovery still
  /// works by full replay).
  virtual bool CollectSnapshotState(uint32_t /*joiner*/,
                                    std::vector<StreamEvent>* /*out*/) {
    return false;
  }

  /// Fills the allocator gauges of a live progress sample. Called from
  /// SampleProgress() on watchdog/serving threads, so implementations
  /// must only read thread-safe counters (NodeArena::snapshot,
  /// EpochManager::PendingCountAll). Default: no arenas, leave zeros.
  virtual void SampleMem(WatchdogSample* /*sample*/) const {}

  /// Sends an event to a joiner, applying the overload policy for tuple
  /// events. Control events (watermark/flush) are never dropped.
  void EnqueueTo(uint32_t joiner, const Event& event);

  /// True once the watchdog or Finish() has raised the stop token.
  /// Subclass loops that can spin (OnFlush drains, auxiliary threads)
  /// must poll this.
  bool stop_requested() const {
    return stop_.load(std::memory_order_acquire);
  }
  const std::atomic<bool>* stop_token() const { return &stop_; }

  uint32_t num_joiners() const { return options_.num_joiners; }
  const QuerySpec& spec() const { return spec_; }
  const EngineOptions& options() const { return options_; }
  ResultSink* sink() const { return sink_; }

  /// The NUMA placement this engine resolved at construction (from
  /// Topology::Detect() and options().numa). Subclass constructors may
  /// query it — e.g. Scale-OIJ binds each joiner's arena to
  /// placement().OsNodeOfJoiner(j) — and joiner threads pin by it.
  const PlacementPlan& placement() const { return placement_; }

  /// --- Standing-query catalog plumbing for subclasses ---

  /// Joiner `j`'s current view of the catalog, indexed by ordinal; only
  /// joiner `j`'s thread may call these. Entries are never null (an
  /// ordinal becomes visible to a joiner only via its kAddQuery
  /// barrier), and `accepting` flips false at the kRemoveQuery barrier
  /// while already-pending windows keep draining.
  const std::vector<QueryRuntime*>& JoinerQueries(uint32_t joiner) const {
    return joiner_views_[joiner].queries;
  }
  bool JoinerAccepting(uint32_t joiner, uint32_t ord) const {
    return joiner_views_[joiner].accepting[ord];
  }

  /// Tags, counts, and forwards one finalized result (joiner threads).
  void EmitResult(QueryRuntime& query, JoinResult& result) {
    result.query = query.ord;
    query.results.fetch_add(1, std::memory_order_relaxed);
    sink_->OnResult(result);
  }

  /// True once a second standing query has ever been registered (driver
  /// thread). Single-query runs never flip this, keeping their Push path
  /// identical to the pre-catalog engine.
  bool multi_query_mode() const { return multi_mode_; }

  /// Per-joiner utilization trackers (populated when collect_cpu_util).
  std::vector<CpuUtilTracker> util_trackers_;

  /// Per-joiner total busy nanoseconds (when collect_breakdown).
  std::vector<int64_t> busy_ns_;

 private:
  void JoinerMain(uint32_t joiner);

  /// One joiner's private catalog view (only that joiner's thread
  /// touches it after Start).
  struct JoinerView {
    std::vector<QueryRuntime*> queries;  ///< indexed by ordinal
    std::vector<bool> accepting;         ///< false past a remove barrier
  };

  /// Appends a catalog entry (WAL-logging it unless a replay is feeding
  /// us) and broadcasts its kAddQuery barrier. Validation is the
  /// caller's job.
  Status ApplyCatalogAdd(std::string_view id, const QuerySpec& spec);

  /// Deactivates `query` and broadcasts its kRemoveQuery barrier.
  void ApplyCatalogRemove(QueryRuntime& query);

  /// Re-derives which late policies the active queries span (driver).
  void RecomputeLatePolicies();

  /// Catalog text for the snapshot MANIFEST (QueryCatalog format).
  std::string SerializeCatalog() const;

  /// Restores standing queries recorded in a snapshot manifest.
  void ApplyManifestCatalog(const QueryCatalog& catalog);

  /// First WAL append of a run: fresh-start semantics — stale on-disk
  /// state that no recovery consumed is discarded (with a warning) so
  /// it can never leak into a later recovery.
  void ArmWalIngest();

  /// Joiner-thread side of the snapshot barrier (kSnapshot event).
  void HandleSnapshotEvent(uint32_t joiner, uint64_t epoch);

  /// Completes the replay: resumes WAL appends past the replayed LSNs
  /// and records the recovery counters.
  void FinishRecovery();

  /// Moves one joiner's staged batch into its ring (applying the
  /// overload policy batch-wise). `deadline_ns` as in PushBounded.
  void FlushStaged(uint32_t joiner, int64_t deadline_ns);
  void FlushAllStaged(int64_t deadline_ns);

  /// Pushes `n` FIFO-ordered tuple events into a joiner's ring under the
  /// configured overload policy, using PushBatch so the shared tail is
  /// updated once per batch, not once per tuple.
  void PushTupleBatch(uint32_t joiner, const Event* events, size_t n,
                      int64_t deadline_ns);

  /// Tuple enqueue under OverloadPolicy::kShedOldest: stage in spill_,
  /// drain opportunistically, shed the oldest staged tuples past
  /// capacity.
  void EnqueueShedding(uint32_t joiner, const Event& event);

  /// Sheds the oldest staged *tuples* beyond the spill capacity
  /// (watermarks/flushes are load-bearing and always survive).
  void ShedSpillOverflow(uint32_t joiner);

  /// Moves staged spill events into the ring. `deadline_ns` as in
  /// SpscQueue::PushBounded. Returns true when the spill emptied.
  bool DrainSpill(uint32_t joiner, int64_t deadline_ns);

  /// Blocking, stop-aware enqueue for control events.
  /// Returns false only if the stop token / deadline cut the wait short.
  bool EnqueueControl(uint32_t joiner, const Event& event,
                      int64_t deadline_ns);

  /// Fault-injection hooks for joiner `j`; returns false when the joiner
  /// should exit (injected stall released by the stop token).
  bool InjectFaults(uint32_t joiner, uint64_t events_seen);

  void StartWatchdog();
  void RecordUnhealthy(const Status& status);

  QuerySpec spec_;
  EngineOptions options_;
  ResultSink* sink_;

  /// Resolved at construction so subclass constructors can read it.
  PlacementPlan placement_;

  std::vector<std::unique_ptr<SpscQueue<Event>>> queues_;
  std::vector<std::thread> threads_;
  bool started_ = false;
  bool finished_ = false;

  /// Router-assigned sequence counter. Single driver thread, so a plain
  /// increment — never an atomic — and staging keeps the numbers of one
  /// flushed batch contiguous (SplitJoin derives its storage designation
  /// from `seq`, so it must be assigned before routing/staging).
  uint64_t seq_ = 0;
  int64_t run_origin_ns_ = 0;

  // --- micro-batched transport (driver thread only) ---
  uint32_t batch_size_ = 1;  ///< effective size (capped at ring capacity)
  std::vector<std::vector<Event>> staged_;
  size_t staged_total_ = 0;
  int64_t earliest_staged_us_ = 0;  ///< arrival stamp of oldest staged

  // --- standing-query catalog ---
  std::deque<QueryRuntime> queries_;      // driver thread; entry 0 = primary
  std::vector<JoinerView> joiner_views_;  // [j] owned by joiner j's thread
  bool multi_mode_ = false;               // driver thread
  bool any_best_effort_ = true;           // driver thread
  bool any_side_channel_ = false;         // driver thread

  // --- overload & fault tolerance ---
  LatenessGate late_gate_;                 // driver thread only
  std::vector<std::deque<Event>> spill_;   // driver thread only
  std::vector<uint64_t> dropped_per_joiner_;
  std::vector<uint64_t> control_lost_per_joiner_;
  uint64_t overload_dropped_ = 0;
  uint64_t overload_shed_ = 0;
  uint64_t watermark_attempts_ = 0;  // incl. injector-suppressed ones

  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> pushed_{0};
  std::atomic<uint64_t> watermarks_signaled_{0};
  std::unique_ptr<PaddedCounter[]> consumed_;  // per joiner
  std::atomic<uint32_t> exited_{0};

  EngineWatchdog watchdog_;
  mutable std::mutex health_mu_;
  Status health_;  // guarded by health_mu_

  // --- durability (driver thread unless noted) ---
  std::unique_ptr<WalManager> wal_;  // null with durability off
  bool ingest_begun_ = false;
  bool recovery_done_ = false;
  std::atomic<bool> replaying_{false};  // read by admin threads
  std::unique_ptr<struct WalReplayPlan> replay_plan_;
  int replay_stage_ = 0;    ///< 0 snapshot, 1 watermark, 2 log, 3 done
  size_t replay_pos_ = 0;   ///< cursor within the current stage
  uint64_t replayed_tuples_ = 0;
  uint64_t replayed_watermarks_ = 0;
  Timestamp recovered_watermark_ = kMinTimestamp;
  int64_t recovery_start_us_ = 0;
  std::vector<std::string> wal_warnings_;
};

}  // namespace oij

#endif  // OIJ_JOIN_ENGINE_H_
