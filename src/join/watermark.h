#ifndef OIJ_JOIN_WATERMARK_H_
#define OIJ_JOIN_WATERMARK_H_

#include "common/types.h"

namespace oij {

/// Tracks the low-watermark of a stream under a lateness bound l: after
/// observing a tuple with event timestamp t, no future tuple may carry a
/// timestamp <= max_seen − l (Section II-B; the generator enforces exactly
/// this disorder bound). The pipeline advances one tracker over the merged
/// arrival sequence and periodically injects the watermark into every
/// joiner queue as a punctuation.
class WatermarkTracker {
 public:
  explicit WatermarkTracker(Timestamp lateness_us)
      : lateness_us_(lateness_us) {}

  void Observe(Timestamp ts) {
    if (ts > max_seen_) max_seen_ = ts;
  }

  Timestamp watermark() const {
    return max_seen_ == kMinTimestamp ? kMinTimestamp
                                      : max_seen_ - lateness_us_;
  }

  Timestamp max_seen() const { return max_seen_; }
  Timestamp lateness_us() const { return lateness_us_; }

 private:
  Timestamp lateness_us_;
  Timestamp max_seen_ = kMinTimestamp;
};

}  // namespace oij

#endif  // OIJ_JOIN_WATERMARK_H_
