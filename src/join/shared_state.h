#ifndef OIJ_JOIN_SHARED_STATE_H_
#define OIJ_JOIN_SHARED_STATE_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "join/engine.h"

namespace oij {

/// The OpenMLDB-style baseline of Figs 22/23 (Section V-E).
///
/// Models the online engine's relevant properties (Section II-A): all
/// worker threads share one global ordered table; the structure is
/// read-optimized, so lookups take a shared lock and use ordered range
/// retrieval, but *insertions serialize* behind an exclusive lock — the
/// blocking-insert bottleneck the paper blames for its poor behaviour at
/// high arrival rates. There is no disorder handling: base tuples join
/// eagerly against whatever is present ("we remove the accuracy checking
/// in OpenMLDB, thus eliminating the effect of lateness intentionally"),
/// so results are approximate under disorder or multi-worker races.
class SharedStateEngine : public ParallelEngineBase {
 public:
  SharedStateEngine(const QuerySpec& spec, const EngineOptions& options,
                    ResultSink* sink);

  std::string_view name() const override { return "openmldb-like"; }

 protected:
  void Route(const Event& event) override;
  void OnTuple(uint32_t joiner, const Event& event) override;
  void OnWatermark(uint32_t joiner, Timestamp watermark) override;
  void CollectStats(EngineStats* stats) override;

 private:
  struct WorkerState {
    uint64_t processed = 0;
    uint64_t visited = 0;
    uint64_t matched = 0;
    double effectiveness_sum = 0.0;
    uint64_t join_ops = 0;
    TimeBreakdown breakdown;
    LatencyRecorder latency;
    SampledCacheProbe cache_probe;
  };

  void JoinOne(WorkerState& s, const Tuple& base, int64_t arrival_us);

  // The single shared table: key -> (ts -> payload), one lock around it.
  std::shared_mutex table_mu_;
  std::unordered_map<Key, std::multimap<Timestamp, double>> table_;
  uint64_t evicted_ = 0;
  uint64_t buffered_ = 0;
  uint64_t peak_buffered_ = 0;

  uint32_t rr_ = 0;
  std::vector<std::unique_ptr<WorkerState>> states_;
};

}  // namespace oij

#endif  // OIJ_JOIN_SHARED_STATE_H_
