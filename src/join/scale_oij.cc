#include "join/scale_oij.h"

#include <algorithm>
#include <limits>
#include <thread>

#include "common/clock.h"

namespace oij {

ScaleOijEngine::ScaleOijEngine(const QuerySpec& spec,
                               const EngineOptions& options, ResultSink* sink)
    : ParallelEngineBase(spec, options, sink),
      ebr_(options.num_joiners + 1),
      table_(options.num_partitions, options.num_joiners),
      router_stats_(options.num_partitions),
      rebalancer_(options.rebalance),
      round_robin_(options.num_partitions, 0) {
  router_schedule_ = table_.Snapshot();
  states_.reserve(options.num_joiners);
  for (uint32_t j = 0; j < options.num_joiners; ++j) {
    const uint32_t slot = ebr_.RegisterThread();
    NodeArena* arena = nullptr;
    if (options.pooled_alloc) {
      arenas_.push_back(std::make_unique<NodeArena>());
      arena = arenas_.back().get();
    }
    states_.push_back(std::make_unique<JoinerState>(
        &ebr_, slot, /*seed=*/0x5ca1e + j, arena));
    states_.back()->schedule = router_schedule_;
    states_.back()->cache_probe =
        SampledCacheProbe(options.cache_sim, options.cache_sample_period);
  }
}

void ScaleOijEngine::Route(const Event& event) {
  const uint32_t p = PartitionTable::PartitionOf(
      event.tuple.key, options().num_partitions);
  router_stats_.Add(p);

  const auto& team = router_schedule_->teams[p];
  const uint32_t member = team[round_robin_[p]++ % team.size()];
  EnqueueTo(member, event);

  if (options().dynamic_schedule &&
      ++events_since_rebalance_ >= options().rebalance_interval_events) {
    events_since_rebalance_ = 0;
    auto next = rebalancer_.Rebalance(router_schedule_, &router_stats_);
    if (next != router_schedule_) {
      ++rebalances_;
      router_schedule_ = next;
      table_.Publish(next);
    }
  }
}

Timestamp ScaleOijEngine::LocalProgress(const JoinerState& s) const {
  // Highest event time through which this joiner's queue is complete *and*
  // processed. A future tuple may still carry ts == watermark, so in
  // kWatermark mode the guarantee is strictly below the punctuation.
  if (spec().emit_mode == EmitMode::kWatermark) {
    if (s.last_wm == kMinTimestamp || s.last_wm == kMaxTimestamp) {
      return s.last_wm;
    }
    return s.last_wm - 1;
  }
  // Eager mode: everything this joiner has observed, plus what the last
  // punctuation proves was emitted globally (wm = max emitted − l).
  Timestamp p = s.max_seen;
  if (s.last_wm != kMinTimestamp) {
    const Timestamp global = s.last_wm == kMaxTimestamp
                                 ? kMaxTimestamp
                                 : s.last_wm + spec().lateness_us;
    p = std::max(p, global);
  }
  return p;
}

void ScaleOijEngine::PublishProgress(JoinerState& s) {
  // Release: teammates that acquire this value must observe every index
  // insert performed before it.
  s.progress.store(LocalProgress(s), std::memory_order_release);
}

void ScaleOijEngine::PublishReadFloor(JoinerState& s) {
  Timestamp basis = s.last_wm;
  if (!s.pending.empty()) {
    basis = std::min(basis, s.pending.top().tuple.ts);
  }
  if (basis == kMinTimestamp) return;  // nothing observed yet
  const Timestamp reach =
      spec().window.pre + (spec().window.pre + spec().window.fol) + 1;
  const Timestamp floor =
      basis > kMinTimestamp + reach ? basis - reach : kMinTimestamp + 1;
  // Monotone by construction, but clamp defensively.
  if (floor > s.read_floor.load(std::memory_order_relaxed)) {
    s.read_floor.store(floor, std::memory_order_release);
  }
}

Timestamp ScaleOijEngine::TeamMinProgress(
    const std::vector<uint32_t>& team) const {
  Timestamp min_p = kMaxTimestamp;
  for (uint32_t m : team) {
    min_p = std::min(min_p,
                     states_[m]->progress.load(std::memory_order_acquire));
  }
  return min_p;
}

Timestamp ScaleOijEngine::GlobalMinReadFloor() const {
  Timestamp min_f = kMaxTimestamp;
  for (const auto& s : states_) {
    min_f =
        std::min(min_f, s->read_floor.load(std::memory_order_acquire));
  }
  return min_f;
}

void ScaleOijEngine::OnTuple(uint32_t joiner, const Event& event) {
  JoinerState& s = *states_[joiner];
  ++s.processed;
  if (event.tuple.ts > s.max_seen) s.max_seen = event.tuple.ts;

  if (event.stream == StreamId::kProbe) {
    s.index.Insert(event.tuple);
    const size_t size = s.index.size();
    if (size > s.peak_buffered) s.peak_buffered = size;
  } else {
    s.pending.push(PendingBase{event.tuple, event.arrival_us});
  }

  if (spec().emit_mode == EmitMode::kEager) {
    PublishProgress(s);
  }
  DrainPending(joiner, s);
}

void ScaleOijEngine::OnWatermark(uint32_t joiner, Timestamp watermark) {
  JoinerState& s = *states_[joiner];
  if (watermark > s.last_wm) s.last_wm = watermark;
  // Teams only grow, so refreshing to the newest schedule is always safe
  // and guarantees the view covers every member routed to so far.
  s.schedule = table_.Snapshot();
  // Publish before draining: gating is on progress, so publishing first
  // keeps the team free of circular waits; eviction safety is carried by
  // read_floor, which still reflects the undrained pending tuples.
  PublishProgress(s);
  PublishReadFloor(s);
  DrainPending(joiner, s);
  Evict(s);
}

void ScaleOijEngine::OnIdle(uint32_t joiner) {
  // Teammate progress may have advanced while our queue is empty.
  DrainPending(joiner, *states_[joiner]);
}

void ScaleOijEngine::OnFlush(uint32_t joiner) {
  JoinerState& s = *states_[joiner];
  // All joiners have published kMaxTimestamp progress by the time they
  // process their own flush; spin until ours drains. A teammate that died
  // before publishing would wedge this wait, so it also honors the stop
  // token.
  while (!s.pending.empty() && !stop_requested()) {
    DrainPending(joiner, s);
    if (!s.pending.empty()) std::this_thread::yield();
  }
  PublishReadFloor(s);
}

void ScaleOijEngine::DrainPending(uint32_t joiner, JoinerState& s) {
  if (s.schedule == nullptr) s.schedule = table_.Snapshot();
  bool popped = false;
  while (!s.pending.empty()) {
    const PendingBase top = s.pending.top();
    const uint32_t p = PartitionTable::PartitionOf(
        top.tuple.key, options().num_partitions);
    const Timestamp window_end = spec().window.end_for(top.tuple.ts);
    if (window_end > TeamMinProgress(s.schedule->teams[p])) break;
    s.pending.pop();
    popped = true;
    JoinOne(joiner, s, top.tuple, top.arrival_us);
  }
  if (popped) PublishReadFloor(s);
}

void ScaleOijEngine::JoinOne(uint32_t joiner, JoinerState& s,
                             const Tuple& base, int64_t arrival_us) {
  (void)joiner;
  const Timestamp start = spec().window.start_for(base.ts);
  const Timestamp end = spec().window.end_for(base.ts);
  const uint32_t p =
      PartitionTable::PartitionOf(base.key, options().num_partitions);
  const std::vector<uint32_t>& team = s.schedule->teams[p];

  uint64_t op_visited = 0;
  double result_value = 0.0;
  uint64_t result_count = 0;
  double out_sum = std::numeric_limits<double>::quiet_NaN();
  double out_min = std::numeric_limits<double>::quiet_NaN();
  double out_max = std::numeric_limits<double>::quiet_NaN();
  {
    ScopedTimerNs timer(&s.breakdown.match_ns);
    EpochGuard guard(ebr_, s.ebr_slot);

    auto scan = [&](Timestamp lo, Timestamp hi, auto&& per_tuple) {
      for (uint32_t m : team) {
        op_visited += states_[m]->index.ForEachInRange(
            base.key, lo, hi, [&](const Tuple& t) {
              s.cache_probe.Touch(&t);
              per_tuple(t);
            });
      }
    };

    if (options().incremental_agg && IsInvertible(spec().agg)) {
      IncrementalWindowState& inc = s.inc_states[base.key];
      const auto slide = inc.Slide(start, end, spec().agg, scan);
      if (slide.recomputed) {
        ++s.recomputes;
      } else {
        ++s.incremental_slides;
      }
      result_value = inc.agg().Result(spec().agg);
      result_count = inc.agg().count;
      out_sum = inc.agg().sum;  // min/max not maintained incrementally
    } else if (options().incremental_agg) {
      // Non-invertible (min/max): Two-Stacks incremental window.
      NonInvertibleWindowState& ni =
          s.ni_states.try_emplace(base.key, spec().agg).first->second;
      const auto slide = ni.Slide(start, end, scan);
      if (slide.recomputed) {
        ++s.recomputes;
      } else {
        ++s.incremental_slides;
      }
      result_count = ni.count();
      result_value = result_count == 0
                         ? std::numeric_limits<double>::quiet_NaN()
                         : ni.Result();
      if (result_count > 0) {
        (spec().agg == AggKind::kMin ? out_min : out_max) = ni.Result();
      }
    } else {
      AggState agg;
      scan(start, end, [&](const Tuple& t) { agg.Add(t.payload); });
      ++s.recomputes;
      result_value = agg.Result(spec().agg);
      result_count = agg.count;
      out_sum = agg.sum;
      if (agg.count > 0) {
        out_min = agg.min;
        out_max = agg.max;
      }
    }
  }

  s.visited += op_visited;
  s.matched += result_count;
  // Incremental slides can visit fewer tuples than are in the window;
  // effectiveness (Eq. 1) is defined on [0, 1], so clamp.
  s.effectiveness_sum +=
      op_visited == 0 ? 1.0
                      : std::min(1.0, static_cast<double>(result_count) /
                                          static_cast<double>(op_visited));
  ++s.join_ops;

  JoinResult result;
  result.base = base;
  result.aggregate = result_value;
  result.match_count = result_count;
  result.sum = out_sum;
  result.min = out_min;
  result.max = out_max;
  result.arrival_us = arrival_us;
  result.emit_us = MonotonicNowUs();
  s.latency.Record(result.emit_us - arrival_us);
  sink()->OnResult(result);
}

void ScaleOijEngine::Evict(JoinerState& s) {
  const Timestamp bound = GlobalMinReadFloor();
  if (bound == kMinTimestamp || bound == kMaxTimestamp) {
    // Nothing published yet, or flush already drained: evict everything
    // only in the latter case.
    if (bound == kMaxTimestamp) s.evicted += s.index.EvictBefore(bound);
    return;
  }
  s.evicted += s.index.EvictBefore(bound);
}

bool ScaleOijEngine::CollectSnapshotState(uint32_t joiner,
                                          std::vector<StreamEvent>* out) {
  // Consistent cut on the joiner thread (kSnapshot event). The index
  // walk is the arena-aware part: with pooled_alloc every node lives on
  // this joiner's contiguous slabs, so the traversal is cache-dense.
  // Probes first, then unfinalized bases; the per-key incremental
  // window states are *derived* state and are rebuilt (or recomputed
  // lazily) when the replayed tuples re-enter through normal ingest.
  JoinerState& s = *states_[joiner];
  out->reserve(out->size() + s.index.size() + s.pending.size());
  s.index.ForEachTuple([out](const Tuple& t) {
    StreamEvent ev;
    ev.stream = StreamId::kProbe;
    ev.tuple = t;
    out->push_back(ev);
  });
  auto pending = s.pending;
  while (!pending.empty()) {
    StreamEvent ev;
    ev.stream = StreamId::kBase;
    ev.tuple = pending.top().tuple;
    out->push_back(ev);
    pending.pop();
  }
  return true;
}

void ScaleOijEngine::CollectStats(EngineStats* stats) {
  stats->per_joiner_processed.resize(states_.size());
  for (size_t j = 0; j < states_.size(); ++j) {
    JoinerState& s = *states_[j];
    stats->per_joiner_processed[j] = s.processed;
    stats->results += s.join_ops;
    stats->visited += s.visited;
    stats->matched += s.matched;
    stats->effectiveness_sum += s.effectiveness_sum;
    stats->join_ops += s.join_ops;
    stats->breakdown.Merge(s.breakdown);
    stats->latency.Merge(s.latency);
    stats->evicted_tuples += s.evicted;
    stats->peak_buffered_tuples += s.peak_buffered;
  }
  stats->rebalances = rebalances_;
  stats->final_schedule_version = router_schedule_->version;

  stats->mem.pooled = !arenas_.empty();
  for (const auto& arena : arenas_) {
    const NodeArena::Stats a = arena->snapshot();
    stats->mem.arena_reserved_bytes += a.reserved_bytes;
    stats->mem.arena_live_nodes += a.live_nodes;
    stats->mem.arena_allocations += a.allocations;
    stats->mem.arena_slab_recycles += a.slab_recycles;
    stats->mem.arena_oversize_allocs += a.oversize_allocs;
  }
  stats->mem.ebr_retired_backlog = ebr_.PendingCountAll();
}

void ScaleOijEngine::SampleMem(WatchdogSample* sample) const {
  // Watchdog/serving threads: only the relaxed-atomic gauges are touched.
  for (const auto& arena : arenas_) {
    const NodeArena::Stats a = arena->snapshot();
    sample->arena_bytes += a.reserved_bytes;
    sample->arena_live_nodes += a.live_nodes;
    sample->arena_slab_recycles += a.slab_recycles;
  }
  sample->ebr_retired_backlog = ebr_.PendingCountAll();
}

}  // namespace oij
