#include "join/scale_oij.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <thread>
#include <tuple>

#include "common/clock.h"

namespace oij {

ScaleOijEngine::ScaleOijEngine(const QuerySpec& spec,
                               const EngineOptions& options, ResultSink* sink)
    : ParallelEngineBase(spec, options, sink),
      ebr_(options.num_joiners + 1),
      table_(options.num_partitions, options.num_joiners),
      router_stats_(options.num_partitions),
      rebalancer_(options.rebalance),
      round_robin_(options.num_partitions, 0) {
  router_schedule_ = table_.Snapshot();
  states_.reserve(options.num_joiners);
  for (uint32_t j = 0; j < options.num_joiners; ++j) {
    const uint32_t slot = ebr_.RegisterThread();
    NodeArena* arena = nullptr;
    if (options.pooled_alloc) {
      arenas_.push_back(std::make_unique<NodeArena>());
      arena = arenas_.back().get();
    }
    states_.push_back(std::make_unique<JoinerState>(
        &ebr_, slot, /*seed=*/0x5ca1e + j, arena));
    states_.back()->schedule = router_schedule_;
    states_.back()->reach =
        spec.window.pre + (spec.window.pre + spec.window.fol) + 1;
    states_.back()->cache_probe =
        SampledCacheProbe(options.cache_sim, options.cache_sample_period);
  }
}

void ScaleOijEngine::OnAddQuery(uint32_t joiner, QueryRuntime& query) {
  JoinerState& s = *states_[joiner];
  if (query.ord >= s.slots.size()) s.slots.resize(query.ord + 1);
  const Timestamp reach = query.spec.window.pre +
                          (query.spec.window.pre + query.spec.window.fol) +
                          1;
  if (reach > s.reach) s.reach = reach;
}

void ScaleOijEngine::Route(const Event& event) {
  const uint32_t p = PartitionTable::PartitionOf(
      event.tuple.key, options().num_partitions);
  router_stats_.Add(p);

  const auto& team = router_schedule_->teams[p];
  const uint32_t member = team[round_robin_[p]++ % team.size()];
  EnqueueTo(member, event);

  if (options().dynamic_schedule &&
      ++events_since_rebalance_ >= options().rebalance_interval_events) {
    events_since_rebalance_ = 0;
    auto next = rebalancer_.Rebalance(router_schedule_, &router_stats_);
    if (next != router_schedule_) {
      ++rebalances_;
      router_schedule_ = next;
      table_.Publish(next);
    }
  }
}

Timestamp ScaleOijEngine::LocalProgress(const JoinerState& s) const {
  // Highest event time through which this joiner's queue is complete *and*
  // processed. A future tuple may still carry ts == watermark, so in
  // kWatermark mode the guarantee is strictly below the punctuation.
  if (spec().emit_mode == EmitMode::kWatermark) {
    if (s.last_wm == kMinTimestamp || s.last_wm == kMaxTimestamp) {
      return s.last_wm;
    }
    return s.last_wm - 1;
  }
  // Eager mode: everything this joiner has observed, plus what the last
  // punctuation proves was emitted globally (wm = max emitted − l).
  Timestamp p = s.max_seen;
  if (s.last_wm != kMinTimestamp) {
    const Timestamp global = s.last_wm == kMaxTimestamp
                                 ? kMaxTimestamp
                                 : s.last_wm + spec().lateness_us;
    p = std::max(p, global);
  }
  return p;
}

void ScaleOijEngine::PublishProgress(JoinerState& s) {
  // Release: teammates that acquire this value must observe every index
  // insert performed before it.
  s.progress.store(LocalProgress(s), std::memory_order_release);
}

void ScaleOijEngine::PublishReadFloor(JoinerState& s) {
  Timestamp basis = s.last_wm;
  for (const QuerySlot& qs : s.slots) {
    if (!qs.pending.empty()) {
      basis = std::min(basis, qs.pending.top().tuple.ts);
    }
  }
  if (basis == kMinTimestamp) return;  // nothing observed yet
  const Timestamp reach = s.reach;
  const Timestamp floor =
      basis > kMinTimestamp + reach ? basis - reach : kMinTimestamp + 1;
  // Monotone by construction, but clamp defensively.
  if (floor > s.read_floor.load(std::memory_order_relaxed)) {
    s.read_floor.store(floor, std::memory_order_release);
  }
}

Timestamp ScaleOijEngine::TeamMinProgress(
    const std::vector<uint32_t>& team) const {
  Timestamp min_p = kMaxTimestamp;
  for (uint32_t m : team) {
    min_p = std::min(min_p,
                     states_[m]->progress.load(std::memory_order_acquire));
  }
  return min_p;
}

Timestamp ScaleOijEngine::GlobalMinReadFloor() const {
  Timestamp min_f = kMaxTimestamp;
  for (const auto& s : states_) {
    min_f =
        std::min(min_f, s->read_floor.load(std::memory_order_acquire));
  }
  return min_f;
}

void ScaleOijEngine::OnTuple(uint32_t joiner, const Event& event) {
  JoinerState& s = *states_[joiner];
  ++s.processed;
  if (event.tuple.ts > s.max_seen) s.max_seen = event.tuple.ts;

  if (event.stream == StreamId::kProbe) {
    if (event.late) {
      // Lateness-violating probe admitted for the best-effort queries:
      // quarantined in the annex so exact queries never scan it.
      s.annex.Insert(event.tuple);
      annex_dirty_.store(true, std::memory_order_release);
    } else {
      s.index.Insert(event.tuple);
    }
    const size_t size = s.index.size() + s.annex.size();
    if (size > s.peak_buffered) s.peak_buffered = size;
  } else {
    for (QueryRuntime* q : JoinerQueries(joiner)) {
      if (q == nullptr || !JoinerAccepting(joiner, q->ord)) continue;
      if (event.late &&
          q->spec.late_policy != LatePolicy::kBestEffortJoin) {
        continue;
      }
      s.slots[q->ord].pending.push(
          PendingBase{event.tuple, event.arrival_us});
    }
  }

  if (spec().emit_mode == EmitMode::kEager) {
    PublishProgress(s);
  }
  DrainPending(joiner, s);
}

void ScaleOijEngine::OnWatermark(uint32_t joiner, Timestamp watermark) {
  JoinerState& s = *states_[joiner];
  if (watermark > s.last_wm) s.last_wm = watermark;
  // Teams only grow, so refreshing to the newest schedule is always safe
  // and guarantees the view covers every member routed to so far.
  s.schedule = table_.Snapshot();
  // Publish before draining: gating is on progress, so publishing first
  // keeps the team free of circular waits; eviction safety is carried by
  // read_floor, which still reflects the undrained pending tuples.
  PublishProgress(s);
  PublishReadFloor(s);
  DrainPending(joiner, s);
  Evict(s);
}

void ScaleOijEngine::OnIdle(uint32_t joiner) {
  // Teammate progress may have advanced while our queue is empty.
  DrainPending(joiner, *states_[joiner]);
}

bool ScaleOijEngine::HavePending(const JoinerState& s) const {
  for (const QuerySlot& qs : s.slots) {
    if (!qs.pending.empty()) return true;
  }
  return false;
}

void ScaleOijEngine::OnFlush(uint32_t joiner) {
  JoinerState& s = *states_[joiner];
  // All joiners have published kMaxTimestamp progress by the time they
  // process their own flush; spin until ours drains. A teammate that died
  // before publishing would wedge this wait, so it also honors the stop
  // token.
  while (HavePending(s) && !stop_requested()) {
    DrainPending(joiner, s);
    if (HavePending(s)) std::this_thread::yield();
  }
  PublishReadFloor(s);
}

void ScaleOijEngine::DrainPending(uint32_t joiner, JoinerState& s) {
  if (s.schedule == nullptr) s.schedule = table_.Snapshot();
  bool popped = false;
  for (QueryRuntime* q : JoinerQueries(joiner)) {
    if (q == nullptr) continue;  // not yet announced to this joiner
    QuerySlot& qs = s.slots[q->ord];
    while (!qs.pending.empty()) {
      const PendingBase top = qs.pending.top();
      const uint32_t p = PartitionTable::PartitionOf(
          top.tuple.key, options().num_partitions);
      const Timestamp window_end = q->spec.window.end_for(top.tuple.ts);
      if (window_end > TeamMinProgress(s.schedule->teams[p])) break;
      qs.pending.pop();
      popped = true;
      JoinOne(joiner, s, *q, qs, top.tuple, top.arrival_us);
    }
  }
  if (popped) PublishReadFloor(s);
}

void ScaleOijEngine::JoinOne(uint32_t joiner, JoinerState& s,
                             QueryRuntime& query, QuerySlot& slot,
                             const Tuple& base, int64_t arrival_us) {
  (void)joiner;
  const QuerySpec& qspec = query.spec;
  const Timestamp start = qspec.window.start_for(base.ts);
  const Timestamp end = qspec.window.end_for(base.ts);
  const uint32_t p =
      PartitionTable::PartitionOf(base.key, options().num_partitions);
  const std::vector<uint32_t>& team = s.schedule->teams[p];

  // Once any late probe entered an annex, best-effort queries trade
  // their incremental window states for full main+annex scans (the
  // annex breaks the in-order precondition incremental slides rely on).
  // Exact-policy queries never scan the annex and keep sliding.
  const bool scan_annex =
      qspec.late_policy == LatePolicy::kBestEffortJoin &&
      annex_dirty_.load(std::memory_order_acquire);

  uint64_t op_visited = 0;
  double result_value = 0.0;
  uint64_t result_count = 0;
  double out_sum = std::numeric_limits<double>::quiet_NaN();
  double out_min = std::numeric_limits<double>::quiet_NaN();
  double out_max = std::numeric_limits<double>::quiet_NaN();
  {
    ScopedTimerNs timer(&s.breakdown.match_ns);
    EpochGuard guard(ebr_, s.ebr_slot);

    auto scan = [&](Timestamp lo, Timestamp hi, auto&& per_tuple) {
      for (uint32_t m : team) {
        op_visited += states_[m]->index.ForEachInRange(
            base.key, lo, hi, [&](const Tuple& t) {
              s.cache_probe.Touch(&t);
              per_tuple(t);
            });
        if (scan_annex) {
          op_visited += states_[m]->annex.ForEachInRange(
              base.key, lo, hi, [&](const Tuple& t) {
                s.cache_probe.Touch(&t);
                per_tuple(t);
              });
        }
      }
    };

    if (!scan_annex && options().incremental_agg &&
        IsInvertible(qspec.agg)) {
      IncrementalWindowState& inc = slot.inc_states[base.key];
      const auto slide = inc.Slide(start, end, qspec.agg, scan);
      if (slide.recomputed) {
        ++s.recomputes;
      } else {
        ++s.incremental_slides;
      }
      result_value = inc.agg().Result(qspec.agg);
      result_count = inc.agg().count;
      out_sum = inc.agg().sum;  // min/max not maintained incrementally
    } else if (!scan_annex && options().incremental_agg) {
      // Non-invertible (min/max): Two-Stacks incremental window.
      NonInvertibleWindowState& ni =
          slot.ni_states.try_emplace(base.key, qspec.agg).first->second;
      const auto slide = ni.Slide(start, end, scan);
      if (slide.recomputed) {
        ++s.recomputes;
      } else {
        ++s.incremental_slides;
      }
      result_count = ni.count();
      result_value = result_count == 0
                         ? std::numeric_limits<double>::quiet_NaN()
                         : ni.Result();
      if (result_count > 0) {
        (qspec.agg == AggKind::kMin ? out_min : out_max) = ni.Result();
      }
    } else {
      AggState agg;
      scan(start, end, [&](const Tuple& t) { agg.Add(t.payload); });
      ++s.recomputes;
      result_value = agg.Result(qspec.agg);
      result_count = agg.count;
      out_sum = agg.sum;
      if (agg.count > 0) {
        out_min = agg.min;
        out_max = agg.max;
      }
    }
  }

  s.visited += op_visited;
  s.matched += result_count;
  // Incremental slides can visit fewer tuples than are in the window;
  // effectiveness (Eq. 1) is defined on [0, 1], so clamp.
  s.effectiveness_sum +=
      op_visited == 0 ? 1.0
                      : std::min(1.0, static_cast<double>(result_count) /
                                          static_cast<double>(op_visited));
  ++s.join_ops;

  JoinResult result;
  result.base = base;
  result.aggregate = result_value;
  result.match_count = result_count;
  result.sum = out_sum;
  result.min = out_min;
  result.max = out_max;
  result.arrival_us = arrival_us;
  result.emit_us = MonotonicNowUs();
  s.latency.Record(result.emit_us - arrival_us);
  EmitResult(query, result);
}

void ScaleOijEngine::Evict(JoinerState& s) {
  const Timestamp bound = GlobalMinReadFloor();
  if (bound == kMinTimestamp || bound == kMaxTimestamp) {
    // Nothing published yet, or flush already drained: evict everything
    // only in the latter case.
    if (bound == kMaxTimestamp) {
      s.evicted += s.index.EvictBefore(bound);
      s.evicted += s.annex.EvictBefore(bound);
    }
    return;
  }
  s.evicted += s.index.EvictBefore(bound);
  s.evicted += s.annex.EvictBefore(bound);
}

bool ScaleOijEngine::CollectSnapshotState(uint32_t joiner,
                                          std::vector<StreamEvent>* out) {
  // Consistent cut on the joiner thread (kSnapshot event). The index
  // walk is the arena-aware part: with pooled_alloc every node lives on
  // this joiner's contiguous slabs, so the traversal is cache-dense.
  // Probes first, then unfinalized bases; the per-key incremental
  // window states are *derived* state and are rebuilt (or recomputed
  // lazily) when the replayed tuples re-enter through normal ingest.
  // The annex (late best-effort probes) is intentionally *not*
  // snapshotted: replayed tuples re-enter under the restored watermark
  // gate, and late data is only ever best-effort. Pending bases are
  // deduplicated across query slots — replay fans a base back out to
  // every active query. (A base already finalized for a narrow-window
  // query but still pending for a wider one is re-joined for both on a
  // snapshot-based recovery; exactly-once per query across divergent
  // windows needs full-log replay, i.e. snapshots off.)
  JoinerState& s = *states_[joiner];
  out->reserve(out->size() + s.index.size());
  s.index.ForEachTuple([out](const Tuple& t) {
    StreamEvent ev;
    ev.stream = StreamId::kProbe;
    ev.tuple = t;
    out->push_back(ev);
  });
  std::vector<Tuple> bases;
  for (const QuerySlot& qs : s.slots) {
    auto pending = qs.pending;
    while (!pending.empty()) {
      bases.push_back(pending.top().tuple);
      pending.pop();
    }
  }
  auto tuple_key = [](const Tuple& t) {
    return std::make_tuple(t.ts, t.key, std::bit_cast<uint64_t>(t.payload));
  };
  std::sort(bases.begin(), bases.end(), [&](const Tuple& a, const Tuple& b) {
    return tuple_key(a) < tuple_key(b);
  });
  bases.erase(std::unique(bases.begin(), bases.end(),
                          [&](const Tuple& a, const Tuple& b) {
                            return tuple_key(a) == tuple_key(b);
                          }),
              bases.end());
  for (const Tuple& t : bases) {
    StreamEvent ev;
    ev.stream = StreamId::kBase;
    ev.tuple = t;
    out->push_back(ev);
  }
  return true;
}

void ScaleOijEngine::CollectStats(EngineStats* stats) {
  stats->per_joiner_processed.resize(states_.size());
  for (size_t j = 0; j < states_.size(); ++j) {
    JoinerState& s = *states_[j];
    stats->per_joiner_processed[j] = s.processed;
    stats->results += s.join_ops;
    stats->visited += s.visited;
    stats->matched += s.matched;
    stats->effectiveness_sum += s.effectiveness_sum;
    stats->join_ops += s.join_ops;
    stats->breakdown.Merge(s.breakdown);
    stats->latency.Merge(s.latency);
    stats->evicted_tuples += s.evicted;
    stats->peak_buffered_tuples += s.peak_buffered;
  }
  stats->rebalances = rebalances_;
  stats->final_schedule_version = router_schedule_->version;

  stats->mem.pooled = !arenas_.empty();
  for (const auto& arena : arenas_) {
    const NodeArena::Stats a = arena->snapshot();
    stats->mem.arena_reserved_bytes += a.reserved_bytes;
    stats->mem.arena_live_nodes += a.live_nodes;
    stats->mem.arena_allocations += a.allocations;
    stats->mem.arena_slab_recycles += a.slab_recycles;
    stats->mem.arena_oversize_allocs += a.oversize_allocs;
  }
  stats->mem.ebr_retired_backlog = ebr_.PendingCountAll();
}

void ScaleOijEngine::SampleMem(WatchdogSample* sample) const {
  // Watchdog/serving threads: only the relaxed-atomic gauges are touched.
  for (const auto& arena : arenas_) {
    const NodeArena::Stats a = arena->snapshot();
    sample->arena_bytes += a.reserved_bytes;
    sample->arena_live_nodes += a.live_nodes;
    sample->arena_slab_recycles += a.slab_recycles;
  }
  sample->ebr_retired_backlog = ebr_.PendingCountAll();
}

}  // namespace oij
