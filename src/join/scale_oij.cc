#include "join/scale_oij.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <thread>
#include <tuple>

#include "common/clock.h"

namespace oij {

namespace {
/// The rebalancer config actually run: the user's knobs plus, when
/// placement resolved a multi-node machine, the per-joiner node map
/// that makes replication prefer same-socket targets.
RebalanceConfig TopoAwareRebalance(const RebalanceConfig& base,
                                   const PlacementPlan& plan) {
  RebalanceConfig config = base;
  if (plan.active && plan.num_nodes > 1) {
    config.joiner_node = plan.joiner_node;
  }
  return config;
}
}  // namespace

ScaleOijEngine::ScaleOijEngine(const QuerySpec& spec,
                               const EngineOptions& options, ResultSink* sink)
    : ParallelEngineBase(spec, options, sink),
      ebr_(options.num_joiners + 1),
      table_(options.num_partitions, options.num_joiners),
      router_stats_(options.num_partitions),
      rebalancer_(TopoAwareRebalance(options.rebalance, placement())),
      round_robin_(options.num_partitions, 0) {
  numa_topo_ = placement().active && placement().num_nodes > 1;
  router_schedule_ = table_.Snapshot();
  states_.reserve(options.num_joiners);
  for (uint32_t j = 0; j < options.num_joiners; ++j) {
    const uint32_t slot = ebr_.RegisterThread();
    NodeArena* arena = nullptr;
    if (options.pooled_alloc) {
      arenas_.push_back(std::make_unique<NodeArena>());
      arena = arenas_.back().get();
      if (placement().active) {
        // Every slab this joiner's index grows onto lands on its own
        // socket (mbind, or first touch from the pinned thread).
        arena->SetNumaNode(placement().OsNodeOfJoiner(j));
      }
    }
    states_.push_back(std::make_unique<JoinerState>(
        &ebr_, slot, /*seed=*/0x5ca1e + j, arena));
    states_.back()->schedule = router_schedule_;
    states_.back()->reach =
        spec.window.pre + (spec.window.pre + spec.window.fol) + 1;
    states_.back()->cache_probe =
        SampledCacheProbe(options.cache_sim, options.cache_sample_period);
  }
}

void ScaleOijEngine::OnAddQuery(uint32_t joiner, QueryRuntime& query) {
  JoinerState& s = *states_[joiner];
  if (query.ord >= s.slots.size()) s.slots.resize(query.ord + 1);
  const Timestamp reach = query.spec.window.pre +
                          (query.spec.window.pre + query.spec.window.fol) +
                          1;
  if (reach > s.reach) s.reach = reach;
}

void ScaleOijEngine::Route(const Event& event) {
  const uint32_t p = PartitionTable::PartitionOf(
      event.tuple.key, options().num_partitions);
  router_stats_.Add(p);

  const auto& team = router_schedule_->teams[p];
  const uint32_t member = team[round_robin_[p]++ % team.size()];
  if (numa_topo_ && team.size() > 1 &&
      placement().NodeOfJoiner(member) != placement().NodeOfJoiner(team[0])) {
    // Single-writer bump (driver thread only; admin threads just read).
    numa_cross_dispatches_.store(
        numa_cross_dispatches_.load(std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
  }
  EnqueueTo(member, event);

  if (options().dynamic_schedule &&
      ++events_since_rebalance_ >= options().rebalance_interval_events) {
    events_since_rebalance_ = 0;
    RebalanceTelemetry tel;
    auto next =
        rebalancer_.Rebalance(router_schedule_, &router_stats_, &tel);
    if (next != router_schedule_) {
      ++rebalances_;
      if (tel.cross_node_moves > 0) {
        numa_cross_replications_.store(
            numa_cross_replications_.load(std::memory_order_relaxed) +
                tel.cross_node_moves,
            std::memory_order_relaxed);
      }
      router_schedule_ = next;
      table_.Publish(next);
    }
  }
}

Timestamp ScaleOijEngine::LocalProgress(const JoinerState& s) const {
  // Highest event time through which this joiner's queue is complete *and*
  // processed. A future tuple may still carry ts == watermark, so in
  // kWatermark mode the guarantee is strictly below the punctuation.
  if (spec().emit_mode == EmitMode::kWatermark) {
    if (s.last_wm == kMinTimestamp || s.last_wm == kMaxTimestamp) {
      return s.last_wm;
    }
    return s.last_wm - 1;
  }
  // Eager mode: everything this joiner has observed, plus what the last
  // punctuation proves was emitted globally (wm = max emitted − l).
  Timestamp p = s.max_seen;
  if (s.last_wm != kMinTimestamp) {
    const Timestamp global = s.last_wm == kMaxTimestamp
                                 ? kMaxTimestamp
                                 : s.last_wm + spec().lateness_us;
    p = std::max(p, global);
  }
  return p;
}

void ScaleOijEngine::PublishProgress(JoinerState& s) {
  // Release: teammates that acquire this value must observe every index
  // insert performed before it.
  s.progress.store(LocalProgress(s), std::memory_order_release);
}

void ScaleOijEngine::PublishReadFloor(JoinerState& s) {
  Timestamp basis = s.last_wm;
  for (const QuerySlot& qs : s.slots) {
    if (!qs.pending.empty()) {
      basis = std::min(basis, qs.pending.top().tuple.ts);
    }
  }
  if (basis == kMinTimestamp) return;  // nothing observed yet
  const Timestamp reach = s.reach;
  const Timestamp floor =
      basis > kMinTimestamp + reach ? basis - reach : kMinTimestamp + 1;
  // Monotone by construction, but clamp defensively.
  if (floor > s.read_floor.load(std::memory_order_relaxed)) {
    s.read_floor.store(floor, std::memory_order_release);
  }
}

Timestamp ScaleOijEngine::TeamMinProgress(
    const std::vector<uint32_t>& team) const {
  Timestamp min_p = kMaxTimestamp;
  for (uint32_t m : team) {
    min_p = std::min(min_p,
                     states_[m]->progress.load(std::memory_order_acquire));
  }
  return min_p;
}

Timestamp ScaleOijEngine::GlobalMinReadFloor() const {
  Timestamp min_f = kMaxTimestamp;
  for (const auto& s : states_) {
    min_f =
        std::min(min_f, s->read_floor.load(std::memory_order_acquire));
  }
  return min_f;
}

void ScaleOijEngine::OnTuple(uint32_t joiner, const Event& event) {
  JoinerState& s = *states_[joiner];
  ++s.processed;
  if (event.tuple.ts > s.max_seen) s.max_seen = event.tuple.ts;

  if (event.stream == StreamId::kProbe) {
    if (event.late) {
      // Lateness-violating probe admitted for the best-effort queries:
      // quarantined in the annex so exact queries never scan it.
      s.annex.Insert(event.tuple);
      annex_dirty_.store(true, std::memory_order_release);
    } else {
      s.index.Insert(event.tuple);
    }
    const size_t size = s.index.size() + s.annex.size();
    if (size > s.peak_buffered) s.peak_buffered = size;
  } else {
    for (QueryRuntime* q : JoinerQueries(joiner)) {
      if (q == nullptr || !JoinerAccepting(joiner, q->ord)) continue;
      if (event.late &&
          q->spec.late_policy != LatePolicy::kBestEffortJoin) {
        continue;
      }
      s.slots[q->ord].pending.push(
          PendingBase{event.tuple, event.arrival_us});
    }
  }

  if (spec().emit_mode == EmitMode::kEager) {
    PublishProgress(s);
  }
  DrainPending(joiner, s);
}

void ScaleOijEngine::OnWatermark(uint32_t joiner, Timestamp watermark) {
  JoinerState& s = *states_[joiner];
  if (watermark > s.last_wm) s.last_wm = watermark;
  // Teams only grow, so refreshing to the newest schedule is always safe
  // and guarantees the view covers every member routed to so far.
  s.schedule = table_.Snapshot();
  // Publish before draining: gating is on progress, so publishing first
  // keeps the team free of circular waits; eviction safety is carried by
  // read_floor, which still reflects the undrained pending tuples.
  PublishProgress(s);
  PublishReadFloor(s);
  DrainPending(joiner, s);
  Evict(s);
}

void ScaleOijEngine::OnIdle(uint32_t joiner) {
  // Teammate progress may have advanced while our queue is empty.
  DrainPending(joiner, *states_[joiner]);
}

bool ScaleOijEngine::HavePending(const JoinerState& s) const {
  for (const QuerySlot& qs : s.slots) {
    if (!qs.pending.empty()) return true;
  }
  return false;
}

void ScaleOijEngine::OnFlush(uint32_t joiner) {
  JoinerState& s = *states_[joiner];
  // All joiners have published kMaxTimestamp progress by the time they
  // process their own flush; spin until ours drains. A teammate that died
  // before publishing would wedge this wait, so it also honors the stop
  // token.
  while (HavePending(s) && !stop_requested()) {
    DrainPending(joiner, s);
    if (HavePending(s)) std::this_thread::yield();
  }
  PublishReadFloor(s);
}

void ScaleOijEngine::DrainPending(uint32_t joiner, JoinerState& s) {
  if (s.schedule == nullptr) s.schedule = table_.Snapshot();
  bool popped = false;
  for (QueryRuntime* q : JoinerQueries(joiner)) {
    if (q == nullptr) continue;  // not yet announced to this joiner
    QuerySlot& qs = s.slots[q->ord];
    if (!options().columnar_batch) {
      while (!qs.pending.empty()) {
        const PendingBase top = qs.pending.top();
        const uint32_t p = PartitionTable::PartitionOf(
            top.tuple.key, options().num_partitions);
        const Timestamp window_end = q->spec.window.end_for(top.tuple.ts);
        if (window_end > TeamMinProgress(s.schedule->teams[p])) break;
        qs.pending.pop();
        popped = true;
        JoinOne(joiner, s, *q, qs, top.tuple, top.arrival_us);
      }
      continue;
    }
    // Columnar path: release the whole team-progress-gated run into the
    // stage first (the gate is checked per pop exactly as the scalar
    // loop does), then join it key-group at a time. Pop order is
    // non-decreasing ts, which the stable key sort preserves within
    // each group — the sweep-merge precondition.
    s.stage.Clear();
    while (!qs.pending.empty()) {
      const PendingBase top = qs.pending.top();
      const uint32_t p = PartitionTable::PartitionOf(
          top.tuple.key, options().num_partitions);
      const Timestamp window_end = q->spec.window.end_for(top.tuple.ts);
      if (window_end > TeamMinProgress(s.schedule->teams[p])) break;
      qs.pending.pop();
      popped = true;
      s.stage.Append(top.tuple, top.arrival_us);
    }
    if (s.stage.empty()) continue;
    if (s.stage.size() < options().columnar_min_run) {
      // Short runs are cheaper scalar: replay in pop order, exactly
      // the sequence the legacy loop would have produced.
      for (size_t i = 0; i < s.stage.size(); ++i) {
        JoinOne(joiner, s, *q, qs, s.stage.TupleAt(i), s.stage.ArrivalAt(i));
      }
      continue;
    }
    s.stage.SortByKey();
    s.stage.ForEachGroup([&](Key key, size_t begin, size_t end) {
      JoinGroupColumnar(joiner, s, *q, qs, key, begin, end);
    });
  }
  if (popped) PublishReadFloor(s);
}

void ScaleOijEngine::JoinOne(uint32_t joiner, JoinerState& s,
                             QueryRuntime& query, QuerySlot& slot,
                             const Tuple& base, int64_t arrival_us) {
  (void)joiner;
  const QuerySpec& qspec = query.spec;
  const Timestamp start = qspec.window.start_for(base.ts);
  const Timestamp end = qspec.window.end_for(base.ts);
  const uint32_t p =
      PartitionTable::PartitionOf(base.key, options().num_partitions);
  const std::vector<uint32_t>& team = s.schedule->teams[p];

  // Once any late probe entered an annex, best-effort queries trade
  // their incremental window states for full main+annex scans (the
  // annex breaks the in-order precondition incremental slides rely on).
  // Exact-policy queries never scan the annex and keep sliding.
  const bool scan_annex =
      qspec.late_policy == LatePolicy::kBestEffortJoin &&
      annex_dirty_.load(std::memory_order_acquire);

  uint64_t op_visited = 0;
  double result_value = 0.0;
  uint64_t result_count = 0;
  double out_sum = std::numeric_limits<double>::quiet_NaN();
  double out_min = std::numeric_limits<double>::quiet_NaN();
  double out_max = std::numeric_limits<double>::quiet_NaN();
  {
    ScopedTimerNs timer(&s.breakdown.match_ns);
    EpochGuard guard(ebr_, s.ebr_slot);

    auto scan = [&](Timestamp lo, Timestamp hi, auto&& per_tuple) {
      for (uint32_t m : team) {
        op_visited += states_[m]->index.ForEachInRange(
            base.key, lo, hi, [&](const Tuple& t) {
              s.cache_probe.Touch(&t);
              per_tuple(t);
            });
        if (scan_annex) {
          op_visited += states_[m]->annex.ForEachInRange(
              base.key, lo, hi, [&](const Tuple& t) {
                s.cache_probe.Touch(&t);
                per_tuple(t);
              });
        }
      }
    };

    if (!scan_annex && options().incremental_agg &&
        IsInvertible(qspec.agg)) {
      IncrementalWindowState& inc = slot.inc_states[base.key];
      const auto slide = inc.Slide(start, end, qspec.agg, scan);
      if (slide.recomputed) {
        ++s.recomputes;
      } else {
        ++s.incremental_slides;
      }
      result_value = inc.agg().Result(qspec.agg);
      result_count = inc.agg().count;
      out_sum = inc.agg().sum;  // min/max not maintained incrementally
    } else if (!scan_annex && options().incremental_agg) {
      // Non-invertible (min/max): Two-Stacks incremental window.
      NonInvertibleWindowState& ni =
          slot.ni_states.try_emplace(base.key, qspec.agg).first->second;
      const auto slide = ni.Slide(start, end, scan);
      if (slide.recomputed) {
        ++s.recomputes;
      } else {
        ++s.incremental_slides;
      }
      result_count = ni.count();
      result_value = result_count == 0
                         ? std::numeric_limits<double>::quiet_NaN()
                         : ni.Result();
      if (result_count > 0) {
        (qspec.agg == AggKind::kMin ? out_min : out_max) = ni.Result();
      }
    } else {
      AggState agg;
      scan(start, end, [&](const Tuple& t) { agg.Add(t.payload); });
      ++s.recomputes;
      result_value = agg.Result(qspec.agg);
      result_count = agg.count;
      out_sum = agg.sum;
      if (agg.count > 0) {
        out_min = agg.min;
        out_max = agg.max;
      }
    }
  }

  s.visited += op_visited;
  s.matched += result_count;
  // Incremental slides can visit fewer tuples than are in the window;
  // effectiveness (Eq. 1) is defined on [0, 1], so clamp.
  s.effectiveness_sum +=
      op_visited == 0 ? 1.0
                      : std::min(1.0, static_cast<double>(result_count) /
                                          static_cast<double>(op_visited));
  ++s.join_ops;

  EmitOne(s, query, base, arrival_us, result_value, result_count, out_sum,
          out_min, out_max);
}

void ScaleOijEngine::JoinGroupColumnar(uint32_t joiner, JoinerState& s,
                                       QueryRuntime& query, QuerySlot& slot,
                                       Key key, size_t begin, size_t end) {
  const QuerySpec& qspec = query.spec;
  const size_t num_bases = end - begin;

  // Engagement gate. The bar is higher when the scalar alternative is
  // the invertible incremental path: that baseline carries window state
  // across drains and only pays the *delta* per base, while the columnar
  // gather re-reads the group's whole union window — which only pays off
  // once the saved per-base index descents outweigh the re-read (~2x the
  // generic group floor, empirically).
  uint32_t min_group = options().columnar_min_group;
  if (options().incremental_agg && IsInvertible(qspec.agg)) {
    min_group = std::max(min_group, 2 * options().columnar_min_group);
  }
  if (num_bases < min_group) {
    // Same replay the NaN fallback below uses.
    for (size_t i = begin; i < end; ++i) {
      JoinOne(joiner, s, query, slot, s.stage.SortedTuple(i),
              s.stage.SortedArrival(i));
    }
    return;
  }

  const uint32_t p =
      PartitionTable::PartitionOf(key, options().num_partitions);
  const std::vector<uint32_t>& team = s.schedule->teams[p];
  const bool scan_annex =
      qspec.late_policy == LatePolicy::kBestEffortJoin &&
      annex_dirty_.load(std::memory_order_acquire);
  const double nan = std::numeric_limits<double>::quiet_NaN();

  ScopedTimerNs timer(&s.breakdown.match_ns);

  // The group's base timestamps, sorted (stable key sort kept pop
  // order), and the union of their windows.
  s.group_ts.resize(num_bases);
  for (size_t i = 0; i < num_bases; ++i) {
    s.group_ts[i] = s.stage.SortedTs(begin + i);
  }
  const Timestamp lo = qspec.window.start_for(s.group_ts[0]);
  const Timestamp hi = qspec.window.end_for(s.group_ts[num_bases - 1]);

  // Stage 1 (gather): one SeekGE per team member covers every base of
  // the group; the scalar path would descend once per (base, member).
  // The epoch guard is only held here — once gathered, the batch is
  // decoupled from index memory.
  s.probes.Clear();
  uint64_t gathered = 0;
  {
    EpochGuard guard(ebr_, s.ebr_slot);
    auto touch = [&](const Tuple& t) { s.cache_probe.Touch(&t); };
    for (uint32_t m : team) {
      gathered +=
          col::GatherRange(states_[m]->index, key, lo, hi, &s.probes, touch);
      if (scan_annex) {
        gathered += col::GatherRange(states_[m]->annex, key, lo, hi,
                                     &s.probes, touch);
      }
    }
  }
  s.probes.EnsureSorted();

  if (!s.probes.all_finite()) {
    // NaN/Inf payloads would diverge under the SIMD min/max lanes;
    // replay this group through the scalar path instead.
    ++s.columnar_fallbacks;
    for (size_t i = begin; i < end; ++i) {
      JoinOne(joiner, s, query, slot, s.stage.SortedTuple(i),
              s.stage.SortedArrival(i));
    }
    return;
  }

  // Stage 2 (sweep merge): per-base window slices from two monotone
  // cursors.
  s.slices.resize(num_bases);
  col::ComputeWindowSlices(s.group_ts.data(), num_bases, qspec.window,
                           s.probes.ts(), s.probes.size(), s.slices.data());

  // Stage 3 (vector aggregate + emit), mirroring the scalar path's
  // result-field contract per configuration.
  const bool incremental = !scan_annex && options().incremental_agg;
  if (incremental && IsInvertible(qspec.agg)) {
    // Invertible fast path: exclusive prefix sums turn every window sum
    // into two loads and a subtract. Scalar emits sum/count only here
    // (min/max are not maintained incrementally), so we do the same.
    s.prefix.resize(s.probes.size() + 1);
    col::PrefixSums(s.probes.payload(), s.probes.size(), s.prefix.data());
    AggState agg;
    for (size_t i = 0; i < num_bases; ++i) {
      const col::BaseSlice sl = s.slices[i];
      agg.sum = s.prefix[sl.hi] - s.prefix[sl.lo];
      agg.count = sl.hi - sl.lo;
      s.matched += agg.count;
      s.effectiveness_sum +=
          gathered == 0 ? 1.0
                        : std::min(1.0, static_cast<double>(agg.count) /
                                            static_cast<double>(gathered));
      ++s.join_ops;
      ++s.incremental_slides;
      EmitOne(s, query, s.stage.SortedTuple(begin + i),
              s.stage.SortedArrival(begin + i), agg.Result(qspec.agg),
              agg.count, agg.sum, nan, nan);
    }
    // Hand the last window's aggregate to the key's incremental state:
    // a later scalar slide must start from *this* window, or its
    // subtract-scan could reach below the published read floor (the
    // floor budgets for at most one window below the next start).
    slot.inc_states[key].Reseed(
        qspec.window.start_for(s.group_ts[num_bases - 1]),
        qspec.window.end_for(s.group_ts[num_bases - 1]), agg);
  } else if (incremental) {
    // Non-invertible (min/max): scalar emits only the requested extreme.
    for (size_t i = 0; i < num_bases; ++i) {
      const col::BaseSlice sl = s.slices[i];
      const col::SliceAgg sa =
          col::AggregateSlice(s.probes.payload() + sl.lo, sl.hi - sl.lo);
      const double extreme = qspec.agg == AggKind::kMin ? sa.min : sa.max;
      const double value = sa.count == 0 ? nan : extreme;
      s.matched += sa.count;
      s.effectiveness_sum +=
          gathered == 0 ? 1.0
                        : std::min(1.0, static_cast<double>(sa.count) /
                                            static_cast<double>(gathered));
      ++s.join_ops;
      ++s.recomputes;
      EmitOne(s, query, s.stage.SortedTuple(begin + i),
              s.stage.SortedArrival(begin + i), value, sa.count, nan,
              qspec.agg == AggKind::kMin && sa.count > 0 ? sa.min : nan,
              qspec.agg == AggKind::kMax && sa.count > 0 ? sa.max : nan);
    }
    // The Two-Stacks FIFO (if armed) no longer matches the last scalar
    // window; force its next slide to recompute.
    auto it = slot.ni_states.find(key);
    if (it != slot.ni_states.end()) it->second.Invalidate();
  } else {
    // Full-scan configuration: scalar emits the complete window stats.
    for (size_t i = 0; i < num_bases; ++i) {
      const col::BaseSlice sl = s.slices[i];
      const col::SliceAgg sa =
          col::AggregateSlice(s.probes.payload() + sl.lo, sl.hi - sl.lo);
      const AggState agg = sa.ToAggState();
      s.matched += agg.count;
      s.effectiveness_sum +=
          gathered == 0 ? 1.0
                        : std::min(1.0, static_cast<double>(agg.count) /
                                            static_cast<double>(gathered));
      ++s.join_ops;
      ++s.recomputes;
      EmitOne(s, query, s.stage.SortedTuple(begin + i),
              s.stage.SortedArrival(begin + i), agg.Result(qspec.agg),
              agg.count, agg.sum, agg.count > 0 ? agg.min : nan,
              agg.count > 0 ? agg.max : nan);
    }
  }

  // The team's indexes were walked once for the whole group, not once
  // per base.
  s.visited += gathered;
  s.columnar_bases += num_bases;
  ++s.columnar_groups;
}

void ScaleOijEngine::EmitOne(JoinerState& s, QueryRuntime& query,
                             const Tuple& base, int64_t arrival_us,
                             double value, uint64_t count, double out_sum,
                             double out_min, double out_max) {
  JoinResult result;
  result.base = base;
  result.aggregate = value;
  result.match_count = count;
  result.sum = out_sum;
  result.min = out_min;
  result.max = out_max;
  result.arrival_us = arrival_us;
  result.emit_us = MonotonicNowUs();
  s.latency.Record(result.emit_us - arrival_us);
  EmitResult(query, result);
}

void ScaleOijEngine::Evict(JoinerState& s) {
  const Timestamp bound = GlobalMinReadFloor();
  if (bound == kMinTimestamp || bound == kMaxTimestamp) {
    // Nothing published yet, or flush already drained: evict everything
    // only in the latter case.
    if (bound == kMaxTimestamp) {
      s.evicted += s.index.EvictBefore(bound);
      s.evicted += s.annex.EvictBefore(bound);
    }
    return;
  }
  s.evicted += s.index.EvictBefore(bound);
  s.evicted += s.annex.EvictBefore(bound);
}

bool ScaleOijEngine::CollectSnapshotState(uint32_t joiner,
                                          std::vector<StreamEvent>* out) {
  // Consistent cut on the joiner thread (kSnapshot event). The index
  // walk is the arena-aware part: with pooled_alloc every node lives on
  // this joiner's contiguous slabs, so the traversal is cache-dense.
  // Probes first, then unfinalized bases; the per-key incremental
  // window states are *derived* state and are rebuilt (or recomputed
  // lazily) when the replayed tuples re-enter through normal ingest.
  // The annex (late best-effort probes) is intentionally *not*
  // snapshotted: replayed tuples re-enter under the restored watermark
  // gate, and late data is only ever best-effort. Pending bases are
  // deduplicated across query slots — replay fans a base back out to
  // every active query. (A base already finalized for a narrow-window
  // query but still pending for a wider one is re-joined for both on a
  // snapshot-based recovery; exactly-once per query across divergent
  // windows needs full-log replay, i.e. snapshots off.)
  JoinerState& s = *states_[joiner];
  out->reserve(out->size() + s.index.size());
  s.index.ForEachTuple([out](const Tuple& t) {
    StreamEvent ev;
    ev.stream = StreamId::kProbe;
    ev.tuple = t;
    out->push_back(ev);
  });
  std::vector<Tuple> bases;
  for (const QuerySlot& qs : s.slots) {
    auto pending = qs.pending;
    while (!pending.empty()) {
      bases.push_back(pending.top().tuple);
      pending.pop();
    }
  }
  auto tuple_key = [](const Tuple& t) {
    return std::make_tuple(t.ts, t.key, std::bit_cast<uint64_t>(t.payload));
  };
  std::sort(bases.begin(), bases.end(), [&](const Tuple& a, const Tuple& b) {
    return tuple_key(a) < tuple_key(b);
  });
  bases.erase(std::unique(bases.begin(), bases.end(),
                          [&](const Tuple& a, const Tuple& b) {
                            return tuple_key(a) == tuple_key(b);
                          }),
              bases.end());
  for (const Tuple& t : bases) {
    StreamEvent ev;
    ev.stream = StreamId::kBase;
    ev.tuple = t;
    out->push_back(ev);
  }
  return true;
}

void ScaleOijEngine::CollectStats(EngineStats* stats) {
  stats->per_joiner_processed.resize(states_.size());
  for (size_t j = 0; j < states_.size(); ++j) {
    JoinerState& s = *states_[j];
    stats->per_joiner_processed[j] = s.processed;
    stats->results += s.join_ops;
    stats->visited += s.visited;
    stats->matched += s.matched;
    stats->effectiveness_sum += s.effectiveness_sum;
    stats->join_ops += s.join_ops;
    stats->breakdown.Merge(s.breakdown);
    stats->latency.Merge(s.latency);
    stats->evicted_tuples += s.evicted;
    stats->peak_buffered_tuples += s.peak_buffered;
    stats->columnar_bases += s.columnar_bases;
    stats->columnar_groups += s.columnar_groups;
    stats->columnar_fallbacks += s.columnar_fallbacks;
  }
  stats->rebalances = rebalances_;
  stats->final_schedule_version = router_schedule_->version;

  stats->mem.pooled = !arenas_.empty();
  // One pass over the per-arena counters fills both the engine-wide
  // aggregate and the per-node split (each arena is wholly on its
  // joiner's node, so grouping is by the placement map — no slab walk).
  const PlacementPlan& plan = placement();
  if (!arenas_.empty()) {
    stats->numa_node_arena_bytes.assign(plan.num_nodes, 0);
    stats->numa_node_arena_live_nodes.assign(plan.num_nodes, 0);
  }
  for (size_t j = 0; j < arenas_.size(); ++j) {
    const NodeArena::Stats a = arenas_[j]->snapshot();
    stats->mem.arena_reserved_bytes += a.reserved_bytes;
    stats->mem.arena_live_nodes += a.live_nodes;
    stats->mem.arena_allocations += a.allocations;
    stats->mem.arena_slab_recycles += a.slab_recycles;
    stats->mem.arena_oversize_allocs += a.oversize_allocs;
    const uint32_t ord =
        std::min(plan.NodeOfJoiner(static_cast<uint32_t>(j)),
                 plan.num_nodes - 1);
    stats->numa_node_arena_bytes[ord] += a.reserved_bytes;
    stats->numa_node_arena_live_nodes[ord] += a.live_nodes;
  }
  stats->mem.ebr_retired_backlog = ebr_.PendingCountAll();
  stats->numa_cross_replications =
      numa_cross_replications_.load(std::memory_order_relaxed);
  stats->numa_cross_dispatches =
      numa_cross_dispatches_.load(std::memory_order_relaxed);
}

void ScaleOijEngine::SampleMem(WatchdogSample* sample) const {
  // Watchdog/serving threads: only the relaxed-atomic gauges are touched.
  const PlacementPlan& plan = placement();
  if (!arenas_.empty()) {
    sample->per_node_arena_bytes.assign(plan.num_nodes, 0);
    sample->per_node_arena_live_nodes.assign(plan.num_nodes, 0);
  }
  for (size_t j = 0; j < arenas_.size(); ++j) {
    const NodeArena::Stats a = arenas_[j]->snapshot();
    sample->arena_bytes += a.reserved_bytes;
    sample->arena_live_nodes += a.live_nodes;
    sample->arena_slab_recycles += a.slab_recycles;
    const uint32_t ord =
        std::min(plan.NodeOfJoiner(static_cast<uint32_t>(j)),
                 plan.num_nodes - 1);
    sample->per_node_arena_bytes[ord] += a.reserved_bytes;
    sample->per_node_arena_live_nodes[ord] += a.live_nodes;
  }
  sample->ebr_retired_backlog = ebr_.PendingCountAll();
  sample->numa_cross_replications =
      numa_cross_replications_.load(std::memory_order_relaxed);
  sample->numa_cross_dispatches =
      numa_cross_dispatches_.load(std::memory_order_relaxed);
}

}  // namespace oij
