#ifndef OIJ_JOIN_HANDSHAKE_H_
#define OIJ_JOIN_HANDSHAKE_H_

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "join/engine.h"
#include "mem/node_arena.h"
#include "skiplist/time_travel_index.h"

namespace oij {

/// Handshake join (Teubner & Mueller, SIGMOD'11) adapted to OIJ semantics
/// — the other parallel stream-join family the paper's related work
/// discusses (but does not evaluate); provided here as an extension
/// baseline.
///
/// Topology: the joiners form a chain. Probe tuples are stored across the
/// chain (round-robin slices: the probe window is spread over the line of
/// players, per the paper's soccer analogy); base tuples enter at hop 0
/// and *flow through every joiner in sequence*, probing each local slice
/// and accumulating a partial aggregate as they travel; the chain's last
/// hop emits the final result.
///
/// Exactness protocol (kWatermark): the *router* holds base tuples until
/// the source watermark passes their window end, then injects them into
/// the chain in timestamp order, each carrying the watermark in force at
/// release (`required_wm`). A hop probes its slice for a base only once
/// its own punctuation stream has caught up to that watermark — at which
/// point every in-window probe routed to the hop is already stored (the
/// probes precede the punctuation in the hop's FIFO). Because the chain
/// is timestamp-ordered, each hop can evict its slice below
/// (oldest possibly-future base ts − PRE) using local knowledge only.
///
/// This reproduces the family's documented trade-offs: naturally balanced
/// storage and no broadcast of probe tuples (unlike SplitJoin), but
/// result latency proportional to chain length and forwarding traffic of
/// one hop per hop per base tuple.
class HandshakeOijEngine : public JoinEngine {
 public:
  HandshakeOijEngine(const QuerySpec& spec, const EngineOptions& options,
                     ResultSink* sink);
  ~HandshakeOijEngine() override;

  Status Start() override;
  void Push(const StreamEvent& event, int64_t arrival_us) override;
  void SignalWatermark(Timestamp watermark) override;
  EngineStats Finish() override;
  WatchdogSample SampleProgress() const override;

  std::string_view name() const override { return "handshake"; }

 private:
  /// A base tuple in flight along the chain, carrying its partial state.
  struct ChainMsg {
    Tuple base;
    int64_t arrival_us = 0;
    /// Punctuation a hop must have processed before probing (kWatermark
    /// mode; kMinTimestamp in kEager mode).
    Timestamp required_wm = kMinTimestamp;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    uint64_t count = 0;
  };

  struct RouterPending {
    Tuple base;
    int64_t arrival_us;

    bool operator>(const RouterPending& other) const {
      return base.ts > other.base.ts;
    }
  };

  struct JoinerState {
    explicit JoinerState(NodeArena* arena, uint64_t seed)
        : slice(/*ebr=*/nullptr, /*owner_slot=*/0, seed, arena) {}

    /// This hop's share of the probe window, keyed and time-ordered.
    /// Single-threaded per hop (only the hop's thread touches it), so no
    /// EBR is needed; the index's O(log) boundary seek replaces the old
    /// whole-bucket linear filter, and with pooled_alloc the nodes live
    /// on the hop-owned arena.
    TimeTravelIndex slice;
    /// Bases awaiting this hop's gate; ts-ordered in kWatermark mode.
    std::deque<ChainMsg> pending;
    Timestamp max_seen = kMinTimestamp;
    Timestamp last_wm = kMinTimestamp;
    Timestamp max_chain_ts = kMinTimestamp;
    bool direct_flushed = false;

    uint64_t processed = 0;
    uint64_t buffered = 0;
    uint64_t peak_buffered = 0;
    uint64_t evicted = 0;
    uint64_t visited = 0;
    uint64_t matched = 0;
    double effectiveness_sum = 0.0;
    uint64_t join_ops = 0;
    TimeBreakdown breakdown;
    LatencyRecorder latency;
    SampledCacheProbe cache_probe;
  };

  void JoinerMain(uint32_t joiner);
  bool GatePassed(const JoinerState& s, const ChainMsg& msg) const;
  /// Probes the local slice, merges into the carried partial, forwards or
  /// emits.
  void ProcessBase(uint32_t joiner, JoinerState& s, ChainMsg msg);
  void DrainPending(uint32_t joiner, JoinerState& s);
  void Evict(JoinerState& s);
  void Emit(JoinerState& s, const ChainMsg& msg);
  void InjectBase(const Tuple& base, int64_t arrival_us,
                  Timestamp required_wm, int64_t deadline_ns = -1);
  void ReleaseRouterPending(Timestamp up_to, Timestamp required_wm,
                            int64_t deadline_ns = -1);

  bool stop_requested() const {
    return stop_.load(std::memory_order_acquire);
  }
  bool InjectFaults(uint32_t joiner, uint64_t events_seen);
  void StartWatchdog();
  void RecordUnhealthy(const Status& status);

  QuerySpec spec_;
  EngineOptions options_;
  ResultSink* sink_;

  /// Router -> joiner: probe tuples and punctuations.
  std::vector<std::unique_ptr<SpscQueue<Event>>> direct_queues_;
  /// Chain hop i receives base tuples from hop i-1 (hop 0 from the
  /// router).
  std::vector<std::unique_ptr<SpscQueue<ChainMsg>>> chain_queues_;

  /// Hop-owned slab arenas (pooled_alloc; empty otherwise). Declared
  /// before states_ so the slices are destroyed first.
  std::vector<std::unique_ptr<NodeArena>> arenas_;
  std::vector<std::unique_ptr<JoinerState>> states_;
  std::vector<std::thread> threads_;
  std::vector<int64_t> busy_ns_;

  // Router-side gating state (driver thread only).
  std::priority_queue<RouterPending, std::vector<RouterPending>,
                      std::greater<RouterPending>>
      router_pending_;
  Timestamp router_wm_ = kMinTimestamp;

  bool started_ = false;
  bool finished_ = false;
  uint64_t store_rr_ = 0;

  // --- overload & fault tolerance (mirrors ParallelEngineBase) ---
  LatenessGate late_gate_;  // driver thread only
  std::vector<uint64_t> dropped_per_joiner_;
  uint64_t overload_dropped_ = 0;
  uint64_t watermark_attempts_ = 0;

  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> pushed_{0};
  std::atomic<uint64_t> watermarks_signaled_{0};
  std::unique_ptr<PaddedCounter[]> consumed_;
  std::atomic<uint32_t> exited_{0};

  EngineWatchdog watchdog_;
  std::mutex health_mu_;
  Status health_;  // guarded by health_mu_
};

}  // namespace oij

#endif  // OIJ_JOIN_HANDSHAKE_H_
