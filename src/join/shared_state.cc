#include "join/shared_state.h"

#include "common/clock.h"

namespace oij {

SharedStateEngine::SharedStateEngine(const QuerySpec& spec,
                                     const EngineOptions& options,
                                     ResultSink* sink)
    : ParallelEngineBase(spec, options, sink) {
  states_.reserve(options.num_joiners);
  for (uint32_t j = 0; j < options.num_joiners; ++j) {
    states_.push_back(std::make_unique<WorkerState>());
    states_.back()->cache_probe =
        SampledCacheProbe(options.cache_sim, options.cache_sample_period);
  }
}

void SharedStateEngine::Route(const Event& event) {
  // Workers share all state, so routing is a plain round-robin spray.
  EnqueueTo(rr_++ % num_joiners(), event);
}

void SharedStateEngine::OnTuple(uint32_t joiner, const Event& event) {
  WorkerState& s = *states_[joiner];
  ++s.processed;
  if (event.stream == StreamId::kProbe) {
    // The bottleneck by design: every insert takes the exclusive lock.
    std::unique_lock<std::shared_mutex> lock(table_mu_);
    table_[event.tuple.key].emplace(event.tuple.ts, event.tuple.payload);
    ++buffered_;
    if (buffered_ > peak_buffered_) peak_buffered_ = buffered_;
  } else {
    JoinOne(s, event.tuple, event.arrival_us);
  }
}

void SharedStateEngine::JoinOne(WorkerState& s, const Tuple& base,
                                int64_t arrival_us) {
  const Timestamp start = spec().window.start_for(base.ts);
  const Timestamp end = spec().window.end_for(base.ts);

  AggState agg;
  uint64_t op_visited = 0;
  {
    // Read-optimized path: ordered range retrieval under a shared lock.
    ScopedTimerNs timer(&s.breakdown.match_ns);
    std::shared_lock<std::shared_mutex> lock(table_mu_);
    auto it = table_.find(base.key);
    if (it != table_.end()) {
      for (auto e = it->second.lower_bound(start);
           e != it->second.end() && e->first <= end; ++e) {
        ++op_visited;
        s.cache_probe.Touch(&e->second);
        agg.Add(e->second);
      }
    }
  }

  s.visited += op_visited;
  s.matched += agg.count;
  s.effectiveness_sum += op_visited == 0
                             ? 1.0
                             : static_cast<double>(agg.count) /
                                   static_cast<double>(op_visited);
  ++s.join_ops;

  JoinResult result;
  result.base = base;
  result.aggregate = agg.Result(spec().agg);
  result.match_count = agg.count;
  FillWindowStats(&result, agg);
  result.arrival_us = arrival_us;
  result.emit_us = MonotonicNowUs();
  s.latency.Record(result.emit_us - arrival_us);
  sink()->OnResult(result);
}

void SharedStateEngine::OnWatermark(uint32_t joiner, Timestamp watermark) {
  // Only worker 0 performs maintenance so the sweep is not duplicated.
  if (joiner != 0 || watermark == kMinTimestamp) return;
  const Timestamp bound =
      watermark == kMaxTimestamp
          ? kMaxTimestamp
          : watermark - spec().window.pre - spec().window.fol;
  std::unique_lock<std::shared_mutex> lock(table_mu_);
  for (auto& [key, mm] : table_) {
    auto upto = mm.lower_bound(bound);
    for (auto it = mm.begin(); it != upto;) {
      it = mm.erase(it);
      ++evicted_;
      --buffered_;
    }
  }
}

void SharedStateEngine::CollectStats(EngineStats* stats) {
  stats->per_joiner_processed.resize(states_.size());
  for (size_t j = 0; j < states_.size(); ++j) {
    WorkerState& s = *states_[j];
    stats->per_joiner_processed[j] = s.processed;
    stats->results += s.join_ops;
    stats->visited += s.visited;
    stats->matched += s.matched;
    stats->effectiveness_sum += s.effectiveness_sum;
    stats->join_ops += s.join_ops;
    stats->breakdown.Merge(s.breakdown);
    stats->latency.Merge(s.latency);
  }
  stats->evicted_tuples = evicted_;
  stats->peak_buffered_tuples = peak_buffered_;
}

}  // namespace oij
