#ifndef OIJ_JOIN_KEY_OIJ_H_
#define OIJ_JOIN_KEY_OIJ_H_

#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "col/column_batch.h"
#include "col/sweep_merge.h"
#include "join/engine.h"

namespace oij {

/// Key-OIJ — the Flink-style key-partitioned parallel OIJ baseline
/// (Section II-C), re-implemented from scratch in C++ as the paper's own
/// methodology does (Section III-D).
///
/// Every tuple is routed to the joiner statically bound to its key's hash.
/// Each joiner keeps one *unsorted* buffer per key; a join operation scans
/// that key's entire buffer and filters on the window predicate (the "full
/// data scan" the paper attributes to the Flink implementation). Tuples
/// are only evicted once the watermark proves no future window can contain
/// them, so a large lateness directly inflates every scan — the behaviour
/// Figs 4-9 dissect.
class KeyOijEngine : public ParallelEngineBase {
 public:
  KeyOijEngine(const QuerySpec& spec, const EngineOptions& options,
               ResultSink* sink);

  std::string_view name() const override { return "key-oij"; }

 protected:
  void Route(const Event& event) override;
  void OnTuple(uint32_t joiner, const Event& event) override;
  void OnWatermark(uint32_t joiner, Timestamp watermark) override;
  bool SupportsMultiQuery() const override { return true; }
  void OnAddQuery(uint32_t joiner, QueryRuntime& query) override;
  void CollectStats(EngineStats* stats) override;
  bool CollectSnapshotState(uint32_t joiner,
                            std::vector<StreamEvent>* out) override;

 private:
  struct PendingBase {
    Tuple tuple;
    int64_t arrival_us;

    bool operator>(const PendingBase& other) const {
      return tuple.ts > other.tuple.ts;
    }
  };

  /// Per-(joiner, query) pending bases, indexed by query ordinal; every
  /// query gates finalization on its own FOL offset but scans the one
  /// shared set of per-key buffers.
  struct QuerySlot {
    std::priority_queue<PendingBase, std::vector<PendingBase>,
                        std::greater<PendingBase>>
        pending;
  };

  /// All state owned by one joiner thread; padded out to its own cache
  /// lines via unique_ptr indirection.
  struct JoinerState {
    std::unordered_map<Key, std::vector<Tuple>> buffers;
    /// Lateness-violating probes, quarantined so drop/side-channel
    /// queries keep exact windows; only best-effort queries scan these.
    /// Key-partitioned routing makes this joiner-local (no atomics).
    std::unordered_map<Key, std::vector<Tuple>> annex;
    std::vector<QuerySlot> slots{1};  ///< indexed by query ordinal
    std::vector<const Tuple*> scratch_matches;

    /// Columnar batch kernel scratch (src/col/, reused across drains):
    /// drained base runs, the transposed+sorted key buffer, and the
    /// per-base window slices of the sweep. Heap-backed — Key-OIJ has
    /// no arena; Scale-OIJ's counterpart stages on slab loans.
    col::ColumnarBatchStage stage;
    col::ProbeColumns probes;
    std::vector<col::BaseSlice> slices;
    std::vector<Timestamp> group_ts;
    uint64_t columnar_bases = 0;
    uint64_t columnar_groups = 0;
    uint64_t columnar_fallbacks = 0;

    /// Max (PRE + FOL) over every query this joiner has ever been told
    /// about — monotone, bounds eviction.
    Timestamp reach = 0;

    Timestamp max_seen = kMinTimestamp;
    Timestamp last_wm = kMinTimestamp;

    uint64_t processed = 0;
    uint64_t buffered = 0;
    uint64_t peak_buffered = 0;
    uint64_t evicted = 0;
    uint64_t visited = 0;
    uint64_t matched = 0;
    double effectiveness_sum = 0.0;
    uint64_t join_ops = 0;
    TimeBreakdown breakdown;
    LatencyRecorder latency;
    SampledCacheProbe cache_probe;
  };

  /// Event-time threshold below which base tuples may finalize.
  Timestamp FinalizeThreshold(const JoinerState& s) const;

  void DrainPending(uint32_t joiner, JoinerState& s);
  void JoinOne(JoinerState& s, QueryRuntime& query, const Tuple& base,
               int64_t arrival_us);
  /// Columnar path: joins one key-group of the staged run (positions
  /// [begin, end) of the sorted stage) against the key's buffer in a
  /// single transpose + sweep instead of one full scan per base.
  void JoinGroupColumnar(JoinerState& s, QueryRuntime& query, Key key,
                         size_t begin, size_t end);
  /// Shared result-emission tail of both join paths.
  void Emit(JoinerState& s, QueryRuntime& query, const Tuple& base,
            int64_t arrival_us, const AggState& agg);
  void Evict(JoinerState& s);

  std::vector<std::unique_ptr<JoinerState>> states_;
};

}  // namespace oij

#endif  // OIJ_JOIN_KEY_OIJ_H_
