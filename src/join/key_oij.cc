#include "join/key_oij.h"

#include <algorithm>
#include <bit>
#include <tuple>

#include "common/clock.h"
#include "common/hash.h"

namespace oij {

KeyOijEngine::KeyOijEngine(const QuerySpec& spec,
                           const EngineOptions& options, ResultSink* sink)
    : ParallelEngineBase(spec, options, sink) {
  states_.reserve(options.num_joiners);
  for (uint32_t j = 0; j < options.num_joiners; ++j) {
    states_.push_back(std::make_unique<JoinerState>());
    states_.back()->reach = spec.window.pre + spec.window.fol;
    states_.back()->cache_probe =
        SampledCacheProbe(options.cache_sim, options.cache_sample_period);
  }
}

void KeyOijEngine::OnAddQuery(uint32_t joiner, QueryRuntime& query) {
  JoinerState& s = *states_[joiner];
  if (query.ord >= s.slots.size()) s.slots.resize(query.ord + 1);
  const Timestamp reach = query.spec.window.pre + query.spec.window.fol;
  if (reach > s.reach) s.reach = reach;
}

void KeyOijEngine::Route(const Event& event) {
  // Static binding of key hash to joiner: the defining property (and
  // weakness: at most u joiners can be busy) of Key-OIJ.
  const uint32_t joiner =
      RangePartition(Mix64(event.tuple.key), num_joiners());
  EnqueueTo(joiner, event);
}

Timestamp KeyOijEngine::FinalizeThreshold(const JoinerState& s) const {
  // Returns the highest event time T such that all data with ts <= T is
  // guaranteed present (exactly in kWatermark mode; best-effort in kEager).
  if (spec().emit_mode == EmitMode::kEager) {
    // Join-on-arrival: a base tuple waits only for its FOL offset worth of
    // locally observed event time (zero wait for PRE-only windows).
    Timestamp t = s.max_seen;
    if (s.last_wm != kMinTimestamp && s.last_wm != kMaxTimestamp) {
      t = std::max(t, s.last_wm + spec().lateness_us);
    } else if (s.last_wm == kMaxTimestamp) {
      t = kMaxTimestamp;
    }
    return t;
  }
  // A future tuple may still carry ts == watermark, so completeness is
  // only guaranteed strictly below it.
  if (s.last_wm == kMinTimestamp || s.last_wm == kMaxTimestamp) {
    return s.last_wm;
  }
  return s.last_wm - 1;
}

void KeyOijEngine::OnTuple(uint32_t joiner, const Event& event) {
  JoinerState& s = *states_[joiner];
  ++s.processed;
  if (event.tuple.ts > s.max_seen) s.max_seen = event.tuple.ts;

  if (event.stream == StreamId::kProbe) {
    (event.late ? s.annex : s.buffers)[event.tuple.key].push_back(
        event.tuple);
    ++s.buffered;
    if (s.buffered > s.peak_buffered) s.peak_buffered = s.buffered;
  } else {
    for (QueryRuntime* q : JoinerQueries(joiner)) {
      if (q == nullptr || !JoinerAccepting(joiner, q->ord)) continue;
      if (event.late &&
          q->spec.late_policy != LatePolicy::kBestEffortJoin) {
        continue;
      }
      s.slots[q->ord].pending.push(
          PendingBase{event.tuple, event.arrival_us});
    }
  }
  DrainPending(joiner, s);
}

void KeyOijEngine::OnWatermark(uint32_t joiner, Timestamp watermark) {
  JoinerState& s = *states_[joiner];
  if (watermark > s.last_wm) s.last_wm = watermark;
  DrainPending(joiner, s);
  Evict(s);
}

void KeyOijEngine::DrainPending(uint32_t joiner, JoinerState& s) {
  const Timestamp threshold = FinalizeThreshold(s);
  for (QueryRuntime* q : JoinerQueries(joiner)) {
    if (q == nullptr) continue;  // not yet announced to this joiner
    QuerySlot& qs = s.slots[q->ord];
    if (!options().columnar_batch) {
      while (!qs.pending.empty() &&
             qs.pending.top().tuple.ts + q->spec.window.fol <= threshold) {
        const PendingBase pb = qs.pending.top();
        qs.pending.pop();
        JoinOne(s, *q, pb.tuple, pb.arrival_us);
      }
      continue;
    }
    // Columnar path: release the whole finalize-ready run into the
    // stage first, then join it key-group at a time. Pop order is
    // non-decreasing ts, which SortByKey preserves within each group
    // (stable sort) — the sweep-merge precondition.
    s.stage.Clear();
    while (!qs.pending.empty() &&
           qs.pending.top().tuple.ts + q->spec.window.fol <= threshold) {
      const PendingBase pb = qs.pending.top();
      qs.pending.pop();
      s.stage.Append(pb.tuple, pb.arrival_us);
    }
    if (s.stage.empty()) continue;
    if (s.stage.size() < options().columnar_min_run) {
      // Short runs are cheaper scalar: replay in pop order, exactly
      // the sequence the legacy loop would have produced.
      for (size_t i = 0; i < s.stage.size(); ++i) {
        JoinOne(s, *q, s.stage.TupleAt(i), s.stage.ArrivalAt(i));
      }
      continue;
    }
    s.stage.SortByKey();
    s.stage.ForEachGroup([&](Key key, size_t begin, size_t end) {
      JoinGroupColumnar(s, *q, key, begin, end);
    });
  }
}

void KeyOijEngine::JoinOne(JoinerState& s, QueryRuntime& query,
                           const Tuple& base, int64_t arrival_us) {
  const QuerySpec& qspec = query.spec;
  const Timestamp start = qspec.window.start_for(base.ts);
  const Timestamp end = qspec.window.end_for(base.ts);

  // Lookup: the full scan over the key's buffer. The buffer is unsorted,
  // so every stored tuple of the key must be visited and filtered.
  // Best-effort queries additionally scan the late-probe annex.
  s.scratch_matches.clear();
  uint64_t op_visited = 0;
  {
    ScopedTimerNs timer(&s.breakdown.lookup_ns);
    auto scan_bucket = [&](const std::unordered_map<Key,
                                                    std::vector<Tuple>>&
                               buckets) {
      auto it = buckets.find(base.key);
      if (it == buckets.end()) return;
      for (const Tuple& r : it->second) {
        ++op_visited;
        s.cache_probe.Touch(&r);
        if (r.ts >= start && r.ts <= end) {
          s.scratch_matches.push_back(&r);
        }
      }
    };
    scan_bucket(s.buffers);
    if (qspec.late_policy == LatePolicy::kBestEffortJoin &&
        !s.annex.empty()) {
      scan_bucket(s.annex);
    }
  }

  // Match: aggregate the in-window tuples.
  AggState agg;
  {
    ScopedTimerNs timer(&s.breakdown.match_ns);
    for (const Tuple* r : s.scratch_matches) {
      agg.Add(r->payload);
    }
  }

  s.visited += op_visited;
  s.matched += s.scratch_matches.size();
  s.effectiveness_sum +=
      op_visited == 0
          ? 1.0
          : static_cast<double>(s.scratch_matches.size()) /
                static_cast<double>(op_visited);
  ++s.join_ops;

  Emit(s, query, base, arrival_us, agg);
}

void KeyOijEngine::JoinGroupColumnar(JoinerState& s, QueryRuntime& query,
                                     Key key, size_t begin, size_t end) {
  const QuerySpec& qspec = query.spec;
  const size_t num_bases = end - begin;

  if (num_bases < options().columnar_min_group) {
    // Too few bases to amortize the per-group gather + sort; the scalar
    // kernel is cheaper. Same replay the NaN fallback below uses.
    for (size_t i = begin; i < end; ++i) {
      JoinOne(s, query, s.stage.SortedTuple(i), s.stage.SortedArrival(i));
    }
    return;
  }

  // Stage 1 (lookup leg): transpose the key's unsorted buffer — and the
  // late-probe annex for best-effort queries — into contiguous probe
  // columns, then ts-sort them once. This replaces one full scan *per
  // base* with one transpose + sort *per group*.
  s.probes.Clear();
  uint64_t group_visited = 0;
  {
    ScopedTimerNs timer(&s.breakdown.lookup_ns);
    auto gather_bucket = [&](const std::unordered_map<Key,
                                                      std::vector<Tuple>>&
                                 buckets) {
      auto it = buckets.find(key);
      if (it == buckets.end()) return;
      for (const Tuple& r : it->second) {
        s.cache_probe.Touch(&r);
        s.probes.Append(r.ts, r.payload);
        ++group_visited;
      }
    };
    gather_bucket(s.buffers);
    if (qspec.late_policy == LatePolicy::kBestEffortJoin &&
        !s.annex.empty()) {
      gather_bucket(s.annex);
    }
    s.probes.EnsureSorted();
  }

  if (!s.probes.all_finite()) {
    // NaN/Inf payloads would diverge under the SIMD min/max lanes;
    // replay this group through the scalar path instead.
    ++s.columnar_fallbacks;
    for (size_t i = begin; i < end; ++i) {
      JoinOne(s, query, s.stage.SortedTuple(i), s.stage.SortedArrival(i));
    }
    return;
  }

  // Stage 2 (sweep merge): locate every base's window boundaries with
  // two monotone cursors over the sorted columns.
  s.group_ts.resize(num_bases);
  for (size_t i = 0; i < num_bases; ++i) {
    s.group_ts[i] = s.stage.SortedTs(begin + i);
  }
  s.slices.resize(num_bases);
  {
    ScopedTimerNs timer(&s.breakdown.lookup_ns);
    col::ComputeWindowSlices(s.group_ts.data(), num_bases, qspec.window,
                             s.probes.ts(), s.probes.size(),
                             s.slices.data());
  }

  // Stage 3 (vector aggregate): reduce each slice and emit.
  {
    ScopedTimerNs timer(&s.breakdown.match_ns);
    for (size_t i = 0; i < num_bases; ++i) {
      const col::BaseSlice sl = s.slices[i];
      const col::SliceAgg sa =
          col::AggregateSlice(s.probes.payload() + sl.lo, sl.hi - sl.lo);
      const AggState agg = sa.ToAggState();
      s.matched += agg.count;
      s.effectiveness_sum +=
          group_visited == 0
              ? 1.0
              : std::min(1.0, static_cast<double>(agg.count) /
                                  static_cast<double>(group_visited));
      ++s.join_ops;
      Emit(s, query, s.stage.SortedTuple(begin + i),
           s.stage.SortedArrival(begin + i), agg);
    }
  }
  // The buffer was walked once for the whole group, not once per base.
  s.visited += group_visited;
  s.columnar_bases += num_bases;
  ++s.columnar_groups;
}

void KeyOijEngine::Emit(JoinerState& s, QueryRuntime& query,
                        const Tuple& base, int64_t arrival_us,
                        const AggState& agg) {
  JoinResult result;
  result.base = base;
  result.aggregate = agg.Result(query.spec.agg);
  result.match_count = agg.count;
  FillWindowStats(&result, agg);
  result.arrival_us = arrival_us;
  result.emit_us = MonotonicNowUs();
  s.latency.Record(result.emit_us - arrival_us);
  EmitResult(query, result);
}

void KeyOijEngine::Evict(JoinerState& s) {
  if (s.last_wm == kMinTimestamp) return;
  // No future base tuple can have ts < last_wm (lateness bound), and
  // pending ones have ts + FOL > last_wm, so no window of any query
  // (reach = max PRE+FOL over all of them) reaches below:
  const Timestamp bound = s.last_wm - s.reach;
  auto evict_buckets =
      [&](std::unordered_map<Key, std::vector<Tuple>>& buckets) {
        for (auto& [key, buffer] : buckets) {
          auto keep_end = std::remove_if(
              buffer.begin(), buffer.end(),
              [bound](const Tuple& t) { return t.ts < bound; });
          const size_t removed =
              static_cast<size_t>(buffer.end() - keep_end);
          if (removed > 0) {
            buffer.erase(keep_end, buffer.end());
            s.evicted += removed;
            s.buffered -= removed;
          }
        }
      };
  evict_buckets(s.buffers);
  evict_buckets(s.annex);
}

bool KeyOijEngine::CollectSnapshotState(uint32_t joiner,
                                        std::vector<StreamEvent>* out) {
  // Consistent cut: runs on the joiner thread at its kSnapshot event, so
  // everything routed before the barrier is incorporated. Probes first
  // (the per-key buffers), then unfinalized bases — re-Pushing them in
  // this order through normal ingest rebuilds the state exactly.
  // The late-probe annex is intentionally not snapshotted (late data is
  // best-effort only); pending bases are deduplicated across query
  // slots — replay fans them back out to every active query.
  const JoinerState& s = *states_[joiner];
  out->reserve(out->size() + s.buffered);
  for (const auto& [key, buffer] : s.buffers) {
    for (const Tuple& t : buffer) {
      StreamEvent ev;
      ev.stream = StreamId::kProbe;
      ev.tuple = t;
      out->push_back(ev);
    }
  }
  std::vector<Tuple> bases;
  for (const QuerySlot& qs : s.slots) {
    auto pending = qs.pending;
    while (!pending.empty()) {
      bases.push_back(pending.top().tuple);
      pending.pop();
    }
  }
  auto tuple_key = [](const Tuple& t) {
    return std::make_tuple(t.ts, t.key, std::bit_cast<uint64_t>(t.payload));
  };
  std::sort(bases.begin(), bases.end(), [&](const Tuple& a, const Tuple& b) {
    return tuple_key(a) < tuple_key(b);
  });
  bases.erase(std::unique(bases.begin(), bases.end(),
                          [&](const Tuple& a, const Tuple& b) {
                            return tuple_key(a) == tuple_key(b);
                          }),
              bases.end());
  for (const Tuple& t : bases) {
    StreamEvent ev;
    ev.stream = StreamId::kBase;
    ev.tuple = t;
    out->push_back(ev);
  }
  return true;
}

void KeyOijEngine::CollectStats(EngineStats* stats) {
  stats->per_joiner_processed.resize(states_.size());
  for (size_t j = 0; j < states_.size(); ++j) {
    JoinerState& s = *states_[j];
    stats->per_joiner_processed[j] = s.processed;
    stats->results += s.join_ops;
    stats->visited += s.visited;
    stats->matched += s.matched;
    stats->effectiveness_sum += s.effectiveness_sum;
    stats->join_ops += s.join_ops;
    stats->breakdown.Merge(s.breakdown);
    stats->latency.Merge(s.latency);
    stats->evicted_tuples += s.evicted;
    stats->peak_buffered_tuples += s.peak_buffered;
    stats->columnar_bases += s.columnar_bases;
    stats->columnar_groups += s.columnar_groups;
    stats->columnar_fallbacks += s.columnar_fallbacks;
  }
}

}  // namespace oij
