#include "join/key_oij.h"

#include <algorithm>

#include "common/clock.h"
#include "common/hash.h"

namespace oij {

KeyOijEngine::KeyOijEngine(const QuerySpec& spec,
                           const EngineOptions& options, ResultSink* sink)
    : ParallelEngineBase(spec, options, sink) {
  states_.reserve(options.num_joiners);
  for (uint32_t j = 0; j < options.num_joiners; ++j) {
    states_.push_back(std::make_unique<JoinerState>());
    states_.back()->cache_probe =
        SampledCacheProbe(options.cache_sim, options.cache_sample_period);
  }
}

void KeyOijEngine::Route(const Event& event) {
  // Static binding of key hash to joiner: the defining property (and
  // weakness: at most u joiners can be busy) of Key-OIJ.
  const uint32_t joiner =
      RangePartition(Mix64(event.tuple.key), num_joiners());
  EnqueueTo(joiner, event);
}

Timestamp KeyOijEngine::FinalizeThreshold(const JoinerState& s) const {
  // Returns the highest event time T such that all data with ts <= T is
  // guaranteed present (exactly in kWatermark mode; best-effort in kEager).
  if (spec().emit_mode == EmitMode::kEager) {
    // Join-on-arrival: a base tuple waits only for its FOL offset worth of
    // locally observed event time (zero wait for PRE-only windows).
    Timestamp t = s.max_seen;
    if (s.last_wm != kMinTimestamp && s.last_wm != kMaxTimestamp) {
      t = std::max(t, s.last_wm + spec().lateness_us);
    } else if (s.last_wm == kMaxTimestamp) {
      t = kMaxTimestamp;
    }
    return t;
  }
  // A future tuple may still carry ts == watermark, so completeness is
  // only guaranteed strictly below it.
  if (s.last_wm == kMinTimestamp || s.last_wm == kMaxTimestamp) {
    return s.last_wm;
  }
  return s.last_wm - 1;
}

void KeyOijEngine::OnTuple(uint32_t joiner, const Event& event) {
  JoinerState& s = *states_[joiner];
  ++s.processed;
  if (event.tuple.ts > s.max_seen) s.max_seen = event.tuple.ts;

  if (event.stream == StreamId::kProbe) {
    s.buffers[event.tuple.key].push_back(event.tuple);
    ++s.buffered;
    if (s.buffered > s.peak_buffered) s.peak_buffered = s.buffered;
  } else {
    if (event.tuple.ts + spec().window.fol <= FinalizeThreshold(s)) {
      JoinOne(s, event.tuple, event.arrival_us);
    } else {
      s.pending.push(PendingBase{event.tuple, event.arrival_us});
    }
  }
  DrainPending(s);
}

void KeyOijEngine::OnWatermark(uint32_t joiner, Timestamp watermark) {
  JoinerState& s = *states_[joiner];
  if (watermark > s.last_wm) s.last_wm = watermark;
  DrainPending(s);
  Evict(s);
}

void KeyOijEngine::DrainPending(JoinerState& s) {
  const Timestamp threshold = FinalizeThreshold(s);
  while (!s.pending.empty() &&
         s.pending.top().tuple.ts + spec().window.fol <= threshold) {
    const PendingBase pb = s.pending.top();
    s.pending.pop();
    JoinOne(s, pb.tuple, pb.arrival_us);
  }
}

void KeyOijEngine::JoinOne(JoinerState& s, const Tuple& base,
                           int64_t arrival_us) {
  const Timestamp start = spec().window.start_for(base.ts);
  const Timestamp end = spec().window.end_for(base.ts);

  // Lookup: the full scan over the key's buffer. The buffer is unsorted,
  // so every stored tuple of the key must be visited and filtered.
  s.scratch_matches.clear();
  uint64_t op_visited = 0;
  {
    ScopedTimerNs timer(&s.breakdown.lookup_ns);
    auto it = s.buffers.find(base.key);
    if (it != s.buffers.end()) {
      for (const Tuple& r : it->second) {
        ++op_visited;
        s.cache_probe.Touch(&r);
        if (r.ts >= start && r.ts <= end) {
          s.scratch_matches.push_back(&r);
        }
      }
    }
  }

  // Match: aggregate the in-window tuples.
  AggState agg;
  {
    ScopedTimerNs timer(&s.breakdown.match_ns);
    for (const Tuple* r : s.scratch_matches) {
      agg.Add(r->payload);
    }
  }

  s.visited += op_visited;
  s.matched += s.scratch_matches.size();
  s.effectiveness_sum +=
      op_visited == 0
          ? 1.0
          : static_cast<double>(s.scratch_matches.size()) /
                static_cast<double>(op_visited);
  ++s.join_ops;

  JoinResult result;
  result.base = base;
  result.aggregate = agg.Result(spec().agg);
  result.match_count = agg.count;
  FillWindowStats(&result, agg);
  result.arrival_us = arrival_us;
  result.emit_us = MonotonicNowUs();
  s.latency.Record(result.emit_us - arrival_us);
  sink()->OnResult(result);
}

void KeyOijEngine::Evict(JoinerState& s) {
  if (s.last_wm == kMinTimestamp) return;
  // No future base tuple can have ts < last_wm (lateness bound), and
  // pending ones have ts + FOL > last_wm, so no window reaches below:
  const Timestamp bound = s.last_wm - spec().window.pre - spec().window.fol;
  for (auto& [key, buffer] : s.buffers) {
    auto keep_end = std::remove_if(
        buffer.begin(), buffer.end(),
        [bound](const Tuple& t) { return t.ts < bound; });
    const size_t removed =
        static_cast<size_t>(buffer.end() - keep_end);
    if (removed > 0) {
      buffer.erase(keep_end, buffer.end());
      s.evicted += removed;
      s.buffered -= removed;
    }
  }
}

bool KeyOijEngine::CollectSnapshotState(uint32_t joiner,
                                        std::vector<StreamEvent>* out) {
  // Consistent cut: runs on the joiner thread at its kSnapshot event, so
  // everything routed before the barrier is incorporated. Probes first
  // (the per-key buffers), then unfinalized bases — re-Pushing them in
  // this order through normal ingest rebuilds the state exactly.
  const JoinerState& s = *states_[joiner];
  out->reserve(out->size() + s.buffered + s.pending.size());
  for (const auto& [key, buffer] : s.buffers) {
    for (const Tuple& t : buffer) {
      StreamEvent ev;
      ev.stream = StreamId::kProbe;
      ev.tuple = t;
      out->push_back(ev);
    }
  }
  auto pending = s.pending;
  while (!pending.empty()) {
    StreamEvent ev;
    ev.stream = StreamId::kBase;
    ev.tuple = pending.top().tuple;
    out->push_back(ev);
    pending.pop();
  }
  return true;
}

void KeyOijEngine::CollectStats(EngineStats* stats) {
  stats->per_joiner_processed.resize(states_.size());
  for (size_t j = 0; j < states_.size(); ++j) {
    JoinerState& s = *states_[j];
    stats->per_joiner_processed[j] = s.processed;
    stats->results += s.join_ops;
    stats->visited += s.visited;
    stats->matched += s.matched;
    stats->effectiveness_sum += s.effectiveness_sum;
    stats->join_ops += s.join_ops;
    stats->breakdown.Merge(s.breakdown);
    stats->latency.Merge(s.latency);
    stats->evicted_tuples += s.evicted;
    stats->peak_buffered_tuples += s.peak_buffered;
  }
}

}  // namespace oij
