#ifndef OIJ_JOIN_REFERENCE_JOIN_H_
#define OIJ_JOIN_REFERENCE_JOIN_H_

#include <vector>

#include "core/query_spec.h"
#include "join/late_gate.h"
#include "stream/generator.h"

namespace oij {

/// One oracle result row: the base tuple and its exact aggregate.
struct ReferenceResult {
  Tuple base;
  double aggregate = 0.0;
  uint64_t match_count = 0;
};

/// Exact single-threaded OIJ oracle over a fully materialized arrival
/// sequence (full knowledge: every probe tuple in a base tuple's window
/// counts, matching EmitMode::kWatermark semantics and, when the input is
/// in order, kEager as well). Sorted per-key probe arrays with binary
/// search; O((|S|+|R|) log |R|).
///
/// Every parallel engine is differential-tested against this.
std::vector<ReferenceResult> ReferenceJoin(
    const std::vector<StreamEvent>& events, const QuerySpec& spec);

/// O(|S|·|R|) brute-force oracle used to validate ReferenceJoin itself on
/// small inputs.
std::vector<ReferenceResult> ReferenceJoinBrute(
    const std::vector<StreamEvent>& events, const QuerySpec& spec);

/// Canonical ordering for comparisons: by (ts, key, payload).
void SortResults(std::vector<ReferenceResult>* results);

/// Counters from a policy-aware reference replay.
struct ReferenceRunStats {
  LateStats late;
  uint64_t watermarks_emitted = 0;
};

/// Replays the arrival sequence through the same lateness gate the
/// parallel engines use — a watermark is (re)computed and observed every
/// `wm_every` arrivals, mirroring the driver loop's push-then-punctuate
/// cadence — applies `spec.late_policy` to each violating tuple, then
/// runs ReferenceJoin over the surviving events. This is the oracle for
/// the degraded regimes: its LateStats must match every engine's, and
/// under kDropAndCount its results are exactly what a correct engine may
/// emit.
std::vector<ReferenceResult> ReferenceJoinWithPolicy(
    const std::vector<StreamEvent>& events, const QuerySpec& spec,
    uint64_t wm_every, ReferenceRunStats* stats = nullptr,
    LateSink* late_sink = nullptr);

}  // namespace oij

#endif  // OIJ_JOIN_REFERENCE_JOIN_H_
