#include "join/engine.h"

#include <cmath>

#include "common/clock.h"
#include "common/thread_util.h"

namespace oij {

Status EngineOptions::Validate() const {
  if (num_joiners == 0) {
    return Status::InvalidArgument("num_joiners must be positive");
  }
  if (queue_capacity < 2) {
    return Status::InvalidArgument("queue_capacity must be >= 2");
  }
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  return Status::OK();
}

double EngineStats::ActualUnbalancedness() const {
  if (per_joiner_processed.empty()) return 0.0;
  double mean = 0.0;
  for (uint64_t c : per_joiner_processed) mean += static_cast<double>(c);
  mean /= static_cast<double>(per_joiner_processed.size());
  if (mean <= 0.0) return 0.0;
  double var = 0.0;
  for (uint64_t c : per_joiner_processed) {
    const double d = static_cast<double>(c) - mean;
    var += d * d;
  }
  var /= static_cast<double>(per_joiner_processed.size());
  return std::sqrt(var) / mean;
}

ParallelEngineBase::ParallelEngineBase(const QuerySpec& spec,
                                       const EngineOptions& options,
                                       ResultSink* sink)
    : spec_(spec), options_(options), sink_(sink) {
  queues_.reserve(options_.num_joiners);
  for (uint32_t j = 0; j < options_.num_joiners; ++j) {
    queues_.push_back(
        std::make_unique<SpscQueue<Event>>(options_.queue_capacity));
  }
}

ParallelEngineBase::~ParallelEngineBase() {
  // Engines must be Finish()ed; tolerate abandonment by draining anyway.
  if (started_ && !finished_) Finish();
}

Status ParallelEngineBase::Start() {
  if (started_) return Status::FailedPrecondition("engine already started");
  Status s = options_.Validate();
  if (!s.ok()) return s;
  s = spec_.Validate();
  if (!s.ok()) return s;

  run_origin_ns_ = MonotonicNowNs();
  busy_ns_.assign(options_.num_joiners, 0);
  if (options_.collect_cpu_util) {
    util_trackers_.clear();
    util_trackers_.reserve(options_.num_joiners);
    for (uint32_t j = 0; j < options_.num_joiners; ++j) {
      util_trackers_.emplace_back(run_origin_ns_,
                                  options_.cpu_util_interval_ns);
    }
  }

  started_ = true;
  threads_.reserve(options_.num_joiners);
  for (uint32_t j = 0; j < options_.num_joiners; ++j) {
    threads_.emplace_back([this, j] { JoinerMain(j); });
  }
  StartAuxiliary();
  return Status::OK();
}

void ParallelEngineBase::Push(const StreamEvent& event, int64_t arrival_us) {
  Event ev;
  ev.kind = Event::Kind::kTuple;
  ev.stream = event.stream;
  ev.tuple = event.tuple;
  ev.arrival_us = arrival_us;
  ev.seq = NextSeq();
  ++pushed_;
  Route(ev);
}

void ParallelEngineBase::SignalWatermark(Timestamp watermark) {
  Event ev;
  ev.kind = Event::Kind::kWatermark;
  ev.watermark = watermark;
  ev.seq = NextSeq();
  for (uint32_t j = 0; j < options_.num_joiners; ++j) {
    EnqueueTo(j, ev);
  }
}

EngineStats ParallelEngineBase::Finish() {
  EngineStats stats;
  if (!started_ || finished_) return stats;
  finished_ = true;

  Event flush;
  flush.kind = Event::Kind::kFlush;
  flush.watermark = kMaxTimestamp;
  for (uint32_t j = 0; j < options_.num_joiners; ++j) {
    EnqueueTo(j, flush);
  }
  for (auto& t : threads_) t.join();
  threads_.clear();
  StopAuxiliary();

  stats.input_tuples = pushed_;
  CollectStats(&stats);
  if (options_.collect_breakdown) {
    for (int64_t b : busy_ns_) stats.breakdown.busy_ns += b;
  }
  if (options_.collect_cpu_util) {
    const int64_t now = MonotonicNowNs();
    for (auto& tracker : util_trackers_) {
      stats.utilization.push_back(tracker.UtilizationSeries(now));
    }
  }
  return stats;
}

void ParallelEngineBase::JoinerMain(uint32_t joiner) {
  SetCurrentThreadName("joiner-" + std::to_string(joiner));
  if (options_.pin_threads) {
    TryPinCurrentThreadTo(static_cast<int>(joiner) % NumCpus());
  }

  const bool track_util = options_.collect_cpu_util;
  const bool track_busy = track_util || options_.collect_breakdown;
  Backoff backoff;
  Event ev;
  while (true) {
    if (!queues_[joiner]->TryPop(&ev)) {
      OnIdle(joiner);
      backoff.Pause();
      continue;
    }
    backoff.Reset();

    const int64_t busy_start = track_busy ? MonotonicNowNs() : 0;
    bool stop = false;
    // Drain a burst: everything currently queued plus the event in hand.
    do {
      switch (ev.kind) {
        case Event::Kind::kTuple:
          OnTuple(joiner, ev);
          break;
        case Event::Kind::kWatermark:
          OnWatermark(joiner, ev.watermark);
          break;
        case Event::Kind::kFlush:
          OnWatermark(joiner, kMaxTimestamp);
          OnFlush(joiner);
          stop = true;
          break;
      }
    } while (!stop && queues_[joiner]->TryPop(&ev));

    if (track_busy) {
      const int64_t busy_end = MonotonicNowNs();
      busy_ns_[joiner] += busy_end - busy_start;
      if (track_util) util_trackers_[joiner].AddBusy(busy_start, busy_end);
    }
    if (stop) break;
  }
}

}  // namespace oij
