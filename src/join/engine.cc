#include "join/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/clock.h"
#include "common/thread_util.h"
#include "wal/wal_reader.h"

namespace oij {

Status JoinEngine::Recover() {
  Status s = BeginRecovery();
  if (!s.ok()) return s;
  while (RecoveryStep(4096)) {
  }
  return Status::OK();
}

std::string_view OverloadPolicyName(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kBlock:
      return "block";
    case OverloadPolicy::kDropNewest:
      return "drop_newest";
    case OverloadPolicy::kShedOldest:
      return "shed_oldest";
  }
  return "unknown";
}

Status EngineOptions::Validate() const {
  if (num_joiners == 0) {
    return Status::InvalidArgument("num_joiners must be positive");
  }
  if (queue_capacity < 2) {
    return Status::InvalidArgument("queue_capacity must be >= 2");
  }
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  if (batch_size == 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }
  if (batch_flush_us < 0) {
    return Status::InvalidArgument("batch_flush_us must be non-negative");
  }
  if (drop_wait_us < 0) {
    return Status::InvalidArgument("drop_wait_us must be non-negative");
  }
  if (columnar_batch && columnar_min_run < 2) {
    return Status::InvalidArgument(
        "columnar_min_run must be >= 2 (a run of one base is always "
        "cheaper scalar)");
  }
  if (finish_timeout_us <= 0) {
    return Status::InvalidArgument("finish_timeout_us must be positive");
  }
  if (!numa.explicit_cpus.empty()) {
    if (numa.explicit_cpus.size() != num_joiners) {
      return Status::InvalidArgument(
          "numa.explicit_cpus must have one entry per joiner (" +
          std::to_string(num_joiners) + "), got " +
          std::to_string(numa.explicit_cpus.size()));
    }
    for (int cpu : numa.explicit_cpus) {
      if (cpu < -1) {
        return Status::InvalidArgument(
            "numa.explicit_cpus entries must be a cpu id or -1 (unpinned)");
      }
    }
  }
  if (enable_watchdog) {
    if (watchdog.interval_ms <= 0) {
      return Status::InvalidArgument("watchdog.interval_ms must be positive");
    }
    if (watchdog.stall_intervals == 0 ||
        watchdog.watermark_freeze_intervals == 0) {
      return Status::InvalidArgument(
          "watchdog escalation thresholds must be positive");
    }
  }
  return durability.Validate();
}

double EngineStats::ActualUnbalancedness() const {
  if (per_joiner_processed.empty()) return 0.0;
  double mean = 0.0;
  for (uint64_t c : per_joiner_processed) mean += static_cast<double>(c);
  mean /= static_cast<double>(per_joiner_processed.size());
  if (mean <= 0.0) return 0.0;
  double var = 0.0;
  for (uint64_t c : per_joiner_processed) {
    const double d = static_cast<double>(c) - mean;
    var += d * d;
  }
  var /= static_cast<double>(per_joiner_processed.size());
  return std::sqrt(var) / mean;
}

ParallelEngineBase::ParallelEngineBase(const QuerySpec& spec,
                                       const EngineOptions& options,
                                       ResultSink* sink)
    : spec_(spec), options_(options), sink_(sink) {
  // Resolve NUMA placement before anything else so subclass constructors
  // (which run after this body) can bind per-joiner state — arenas — to
  // their joiner's node.
  placement_ =
      PlanPlacement(Topology::Detect(), options_.num_joiners, options_.numa);

  queues_.reserve(options_.num_joiners);
  for (uint32_t j = 0; j < options_.num_joiners; ++j) {
    queues_.push_back(
        std::make_unique<SpscQueue<Event>>(options_.queue_capacity));
  }
  spill_.resize(options_.num_joiners);
  dropped_per_joiner_.assign(options_.num_joiners, 0);
  control_lost_per_joiner_.assign(options_.num_joiners, 0);

  // Staging deeper than the ring only adds latency, never throughput.
  batch_size_ = std::min(options_.batch_size, options_.queue_capacity);
  staged_.resize(options_.num_joiners);
  if (batch_size_ > 1) {
    for (auto& stage : staged_) stage.reserve(batch_size_);
  }
}

ParallelEngineBase::~ParallelEngineBase() {
  // Engines must be Finish()ed; tolerate abandonment by draining anyway.
  if (started_ && !finished_) Finish();
}

Status ParallelEngineBase::Start() {
  if (started_) return Status::FailedPrecondition("engine already started");
  Status s = options_.Validate();
  if (!s.ok()) return s;
  s = spec_.Validate();
  if (!s.ok()) return s;

  run_origin_ns_ = MonotonicNowNs();
  busy_ns_.assign(options_.num_joiners, 0);
  if (options_.collect_cpu_util) {
    util_trackers_.clear();
    util_trackers_.reserve(options_.num_joiners);
    for (uint32_t j = 0; j < options_.num_joiners; ++j) {
      util_trackers_.emplace_back(run_origin_ns_,
                                  options_.cpu_util_interval_ns);
    }
  }

  late_gate_.Configure(spec_.late_policy, options_.late_sink);

  // Catalog entry 0 is always the primary query; every joiner starts with
  // it in view, so the single-query path is just the one-entry case.
  queries_.clear();
  queries_.emplace_back();
  queries_[0].ord = 0;
  queries_[0].id = "main";
  queries_[0].spec = spec_;
  multi_mode_ = false;
  RecomputeLatePolicies();
  joiner_views_.assign(options_.num_joiners, JoinerView{});
  for (auto& view : joiner_views_) {
    view.queries.push_back(&queries_[0]);
    view.accepting.push_back(true);
  }

  consumed_ = std::make_unique<PaddedCounter[]>(options_.num_joiners);
  stop_.store(false, std::memory_order_release);
  exited_.store(0, std::memory_order_release);

  if (options_.durability.enabled()) {
    wal_ = std::make_unique<WalManager>(options_.durability,
                                        options_.num_joiners,
                                        options_.fault_injector);
    s = wal_->Open();
    if (!s.ok()) {
      wal_.reset();
      return s;
    }
  }

  started_ = true;
  threads_.reserve(options_.num_joiners);
  for (uint32_t j = 0; j < options_.num_joiners; ++j) {
    threads_.emplace_back([this, j] { JoinerMain(j); });
  }
  StartAuxiliary();
  if (options_.enable_watchdog) StartWatchdog();
  return Status::OK();
}

void ParallelEngineBase::ArmWalIngest() {
  ingest_begun_ = true;
  if (wal_->HasExistingState() && !recovery_done_) {
    // The caller started ingesting without recovering: the on-disk
    // state belongs to a previous incarnation and mixing it with this
    // run's log would corrupt a later recovery. Fresh-start semantics.
    wal_->DiscardExistingState();
    wal_warnings_.push_back(
        "wal_dir held state from a previous run but ingest began without "
        "recovery; discarded it (recover before the first Push to keep "
        "it)");
  }
}

void ParallelEngineBase::Push(const StreamEvent& event, int64_t arrival_us) {
  pushed_.fetch_add(1, std::memory_order_relaxed);
  if (stop_requested()) {
    // Aborted run: everything after the abort is shed at the door.
    ++overload_dropped_;
    return;
  }
  if (wal_ != nullptr && !replaying_.load(std::memory_order_relaxed)) {
    // Log the *raw* arrival before the lateness gate: replaying the same
    // arrivals against the same watermark sequence reproduces every gate
    // decision, so drops/side-channel diversions recover identically.
    if (!ingest_begun_) ArmWalIngest();
    wal_->AppendTuple(event);
    wal_->CommitGroup(arrival_us, /*watermark_barrier=*/false);
    wal_->PollSnapshotCompletion();
  }
  bool late = false;
  if (!multi_mode_) {
    if (!late_gate_.Admit(event)) return;
  } else {
    // Per-query late policies: "late" is global (every query shares the
    // primary's lateness bound), but each query disposes of the tuple by
    // its own policy. The tuple is routed at all only when a best-effort
    // query wants it, flagged so drop/side-channel queries never see it.
    const Timestamp wm = late_gate_.last_watermark();
    if (wm != kMinTimestamp && event.tuple.ts < wm) {
      for (QueryRuntime& q : queries_) {
        if (!q.active) continue;
        ++q.late.tuples;
        if (event.stream == StreamId::kBase) {
          ++q.late.base;
        } else {
          ++q.late.probe;
        }
        switch (q.spec.late_policy) {
          case LatePolicy::kBestEffortJoin:
            ++q.late.joined;
            break;
          case LatePolicy::kDropAndCount:
            ++q.late.dropped;
            break;
          case LatePolicy::kSideChannel:
            ++q.late.side_channel;
            break;
        }
      }
      if (any_side_channel_ && options_.late_sink != nullptr) {
        options_.late_sink->OnLateTuple(event, wm);
      }
      if (!any_best_effort_) return;
      late = true;
    }
  }

  Event ev;
  ev.kind = Event::Kind::kTuple;
  ev.stream = event.stream;
  ev.tuple = event.tuple;
  ev.arrival_us = arrival_us;
  ev.late = late;
  ev.seq = seq_++;
  Route(ev);

  // Time-bound flush: reuse the caller's arrival stamp as "now" so the
  // bound costs no clock read on the hot path.
  if (staged_total_ > 0 && options_.batch_flush_us > 0 &&
      arrival_us - earliest_staged_us_ >= options_.batch_flush_us) {
    FlushAllStaged(/*deadline_ns=*/-1);
  }
}

void ParallelEngineBase::SignalWatermark(Timestamp watermark) {
  const uint64_t attempt = watermark_attempts_++;
  if (options_.fault_injector != nullptr &&
      options_.fault_injector->WatermarkFrozen(attempt)) {
    return;  // injected frozen source: punctuation silently swallowed
  }
  late_gate_.ObserveWatermark(watermark);
  watermarks_signaled_.fetch_add(1, std::memory_order_relaxed);

  const bool wal_live =
      wal_ != nullptr && !replaying_.load(std::memory_order_relaxed);
  if (wal_live) {
    if (!ingest_begun_) ArmWalIngest();
    wal_->AppendWatermark(watermark);
    // The per-batch durability point: everything this watermark can
    // finalize reaches disk *before* the joiners see the punctuation,
    // so no externalized result ever depends on an unlogged input.
    wal_->CommitGroup(MonotonicNowUs(), /*watermark_barrier=*/true);
  }

  Event ev;
  ev.kind = Event::Kind::kWatermark;
  ev.watermark = watermark;
  ev.seq = seq_++;
  for (uint32_t j = 0; j < options_.num_joiners; ++j) {
    if (!EnqueueControl(j, ev, -1)) {
      // A watermark lost here (stop token raised while the ring stayed
      // full) would silently freeze this joiner's eviction and
      // finalization — account it so the run is marked non-pristine.
      ++control_lost_per_joiner_[j];
    }
  }

  if (wal_live) {
    if (wal_->SnapshotDue()) {
      // Snapshot barrier: rotate the log, then ask every joiner (via an
      // ordinary control event, so FIFO order makes the cut consistent)
      // to persist its state for this epoch.
      const uint64_t epoch = wal_->BeginSnapshot(
          late_gate_.last_watermark(), SerializeCatalog());
      Event snap;
      snap.kind = Event::Kind::kSnapshot;
      snap.watermark = static_cast<Timestamp>(epoch);
      snap.seq = seq_++;
      for (uint32_t j = 0; j < options_.num_joiners; ++j) {
        if (!EnqueueControl(j, snap, -1)) {
          ++control_lost_per_joiner_[j];
          wal_->MarkSnapshotFailed(epoch);
        }
      }
    }
    wal_->PollSnapshotCompletion();
  }
}

void ParallelEngineBase::FlushPending() { FlushAllStaged(/*deadline_ns=*/-1); }

Status ParallelEngineBase::AddQuery(std::string_view id,
                                    const QuerySpec& spec) {
  if (!started_ || finished_) {
    return Status::FailedPrecondition(
        "AddQuery needs a started, unfinished engine");
  }
  if (!SupportsMultiQuery()) {
    return Status::FailedPrecondition(
        std::string(name()) + " does not support a standing-query catalog");
  }
  if (Status s = QueryCatalog::ValidateId(id); !s.ok()) return s;
  if (Status s = spec.Validate(); !s.ok()) return s;
  if (spec.lateness_us != spec_.lateness_us) {
    return Status::InvalidArgument(
        "standing queries must share the primary query's lateness bound (" +
        std::to_string(spec_.lateness_us) + " us)");
  }
  if (spec.emit_mode != spec_.emit_mode) {
    return Status::InvalidArgument(
        "standing queries must share the primary query's emit mode (" +
        std::string(EmitModeName(spec_.emit_mode)) + ")");
  }
  for (const QueryRuntime& q : queries_) {
    if (q.active && q.id == id) {
      return Status::InvalidArgument("query id '" + std::string(id) +
                                     "' already exists");
    }
  }
  return ApplyCatalogAdd(id, spec);
}

Status ParallelEngineBase::ApplyCatalogAdd(std::string_view id,
                                           const QuerySpec& spec) {
  const bool wal_live =
      wal_ != nullptr && !replaying_.load(std::memory_order_relaxed);
  if (wal_live) {
    if (!ingest_begun_) ArmWalIngest();
    wal_->AppendAddQuery(id, spec);
    // Catalog changes are rare and load-bearing: always sync them like a
    // watermark barrier so a recovered run serves the same catalog.
    wal_->CommitGroup(MonotonicNowUs(), /*watermark_barrier=*/true);
  }
  if (!multi_mode_) {
    multi_mode_ = true;
    // The gate counted the primary query's violations until now; hand
    // its tallies over so per-query counters stay continuous.
    queries_[0].late = late_gate_.stats();
  }
  queries_.emplace_back();
  QueryRuntime& q = queries_.back();
  q.ord = static_cast<uint32_t>(queries_.size() - 1);
  q.id = std::string(id);
  q.spec = spec;
  RecomputeLatePolicies();

  Event ev;
  ev.kind = Event::Kind::kAddQuery;
  ev.query = &q;
  ev.seq = seq_++;
  for (uint32_t j = 0; j < options_.num_joiners; ++j) {
    if (!EnqueueControl(j, ev, -1)) ++control_lost_per_joiner_[j];
  }
  return Status::OK();
}

Status ParallelEngineBase::RemoveQuery(std::string_view id) {
  if (!started_ || finished_) {
    return Status::FailedPrecondition(
        "RemoveQuery needs a started, unfinished engine");
  }
  if (!SupportsMultiQuery()) {
    return Status::FailedPrecondition(
        std::string(name()) + " does not support a standing-query catalog");
  }
  for (QueryRuntime& q : queries_) {
    if (!q.active || q.id != id) continue;
    if (q.ord == 0) {
      return Status::InvalidArgument("the primary query cannot be removed");
    }
    const bool wal_live =
        wal_ != nullptr && !replaying_.load(std::memory_order_relaxed);
    if (wal_live) {
      if (!ingest_begun_) ArmWalIngest();
      wal_->AppendRemoveQuery(id);
      wal_->CommitGroup(MonotonicNowUs(), /*watermark_barrier=*/true);
    }
    ApplyCatalogRemove(q);
    return Status::OK();
  }
  return Status::NotFound("no active query with id '" + std::string(id) +
                          "'");
}

void ParallelEngineBase::ApplyCatalogRemove(QueryRuntime& query) {
  query.active = false;
  RecomputeLatePolicies();
  Event ev;
  ev.kind = Event::Kind::kRemoveQuery;
  ev.query = &query;
  ev.seq = seq_++;
  for (uint32_t j = 0; j < options_.num_joiners; ++j) {
    if (!EnqueueControl(j, ev, -1)) ++control_lost_per_joiner_[j];
  }
}

void ParallelEngineBase::RecomputeLatePolicies() {
  any_best_effort_ = false;
  any_side_channel_ = false;
  for (const QueryRuntime& q : queries_) {
    if (!q.active) continue;
    if (q.spec.late_policy == LatePolicy::kBestEffortJoin) {
      any_best_effort_ = true;
    }
    if (q.spec.late_policy == LatePolicy::kSideChannel) {
      any_side_channel_ = true;
    }
  }
}

std::string ParallelEngineBase::SerializeCatalog() const {
  QueryCatalog catalog;
  for (const QueryRuntime& q : queries_) {
    catalog.Append(q.id, q.spec, q.active);
  }
  return catalog.Serialize();
}

void ParallelEngineBase::ApplyManifestCatalog(const QueryCatalog& catalog) {
  for (const QueryEntry& e : catalog.entries()) {
    if (e.ord == 0) continue;  // the primary comes from our own spec
    if (!SupportsMultiQuery()) {
      wal_warnings_.push_back(
          "snapshot manifest carries standing queries but this engine "
          "cannot serve them; catalog dropped");
      return;
    }
    ApplyCatalogAdd(e.id, e.spec);
    if (!e.active) ApplyCatalogRemove(queries_.back());
  }
}

std::vector<QueryStatsRow> ParallelEngineBase::QuerySnapshot() const {
  std::vector<QueryStatsRow> rows;
  rows.reserve(queries_.size());
  for (const QueryRuntime& q : queries_) {
    QueryStatsRow row;
    row.ord = q.ord;
    row.id = q.id;
    row.spec = q.spec;
    row.active = q.active;
    row.results = q.results.load(std::memory_order_relaxed);
    row.late = (q.ord == 0 && !multi_mode_) ? late_gate_.stats() : q.late;
    rows.push_back(std::move(row));
  }
  return rows;
}

void ParallelEngineBase::EnqueueTo(uint32_t joiner, const Event& event) {
  if (event.kind != Event::Kind::kTuple) {
    if (!EnqueueControl(joiner, event, -1)) {
      ++control_lost_per_joiner_[joiner];
    }
    return;
  }
  if (batch_size_ > 1) {
    auto& stage = staged_[joiner];
    if (staged_total_ == 0) earliest_staged_us_ = event.arrival_us;
    stage.push_back(event);
    ++staged_total_;
    if (stage.size() >= batch_size_) FlushStaged(joiner, /*deadline_ns=*/-1);
    return;
  }
  switch (options_.overload_policy) {
    case OverloadPolicy::kBlock: {
      const PushResult r =
          queues_[joiner]->PushBounded(event, /*deadline_ns=*/-1, &stop_);
      if (r != PushResult::kOk) {
        ++dropped_per_joiner_[joiner];
        ++overload_dropped_;
      }
      break;
    }
    case OverloadPolicy::kDropNewest: {
      const int64_t deadline =
          options_.drop_wait_us > 0
              ? MonotonicNowNs() + options_.drop_wait_us * 1000
              : 0;
      const PushResult r = queues_[joiner]->PushBounded(event, deadline,
                                                        &stop_);
      if (r != PushResult::kOk) {
        ++dropped_per_joiner_[joiner];
        ++overload_dropped_;
      }
      break;
    }
    case OverloadPolicy::kShedOldest:
      EnqueueShedding(joiner, event);
      break;
  }
}

void ParallelEngineBase::FlushStaged(uint32_t joiner, int64_t deadline_ns) {
  auto& stage = staged_[joiner];
  if (stage.empty()) return;
  staged_total_ -= stage.size();
  PushTupleBatch(joiner, stage.data(), stage.size(), deadline_ns);
  stage.clear();
}

void ParallelEngineBase::FlushAllStaged(int64_t deadline_ns) {
  if (staged_total_ == 0) return;
  // Per-socket batches: the plan's flush order groups joiners by node,
  // so one socket's rings are filled back-to-back before the router's
  // writes move to the next socket's cache lines. Identity order when
  // placement is inactive; either way every joiner is flushed, and
  // per-queue FIFO (the only ordering contract) is untouched.
  for (uint32_t j : placement_.flush_order) {
    FlushStaged(j, deadline_ns);
  }
}

void ParallelEngineBase::PushTupleBatch(uint32_t joiner, const Event* events,
                                        size_t n, int64_t deadline_ns) {
  SpscQueue<Event>& queue = *queues_[joiner];
  switch (options_.overload_policy) {
    case OverloadPolicy::kBlock: {
      // Lossless backpressure: wait (stop-token aware) for the consumer.
      // `deadline_ns` is -1 except when Finish flushes with its bound.
      size_t i = 0;
      while (i < n) {
        i += queue.PushBatch(events + i, n - i);
        if (i >= n) break;
        if (stop_.load(std::memory_order_acquire) ||
            (deadline_ns >= 0 && MonotonicNowNs() >= deadline_ns)) {
          dropped_per_joiner_[joiner] += n - i;
          overload_dropped_ += n - i;
          return;
        }
        std::this_thread::yield();
      }
      break;
    }
    case OverloadPolicy::kDropNewest: {
      int64_t deadline = deadline_ns;
      if (deadline < 0) {
        deadline = options_.drop_wait_us > 0
                       ? MonotonicNowNs() + options_.drop_wait_us * 1000
                       : 0;
      }
      size_t i = 0;
      while (i < n) {
        i += queue.PushBatch(events + i, n - i);
        if (i >= n) break;
        if (stop_.load(std::memory_order_acquire) || deadline == 0 ||
            MonotonicNowNs() >= deadline) {
          dropped_per_joiner_[joiner] += n - i;
          overload_dropped_ += n - i;
          return;
        }
        std::this_thread::yield();
      }
      break;
    }
    case OverloadPolicy::kShedOldest: {
      // FIFO with the spill: ring-push directly only while the spill is
      // empty, then stage the remainder behind it and shed the oldest.
      auto& spill = spill_[joiner];
      size_t i = 0;
      if (spill.empty()) {
        while (i < n) {
          const size_t pushed = queue.PushBatch(events + i, n - i);
          if (pushed == 0) break;
          i += pushed;
        }
      }
      for (; i < n; ++i) spill.push_back(events[i]);
      while (!spill.empty() && queue.TryPush(spill.front())) {
        spill.pop_front();
      }
      ShedSpillOverflow(joiner);
      break;
    }
  }
}

void ParallelEngineBase::EnqueueShedding(uint32_t joiner, const Event& event) {
  auto& spill = spill_[joiner];
  if (spill.empty() && queues_[joiner]->TryPush(event)) return;

  spill.push_back(event);
  // Opportunistic drain: move whatever fits right now.
  while (!spill.empty() && queues_[joiner]->TryPush(spill.front())) {
    spill.pop_front();
  }
  ShedSpillOverflow(joiner);
}

void ParallelEngineBase::ShedSpillOverflow(uint32_t joiner) {
  auto& spill = spill_[joiner];
  const size_t cap = options_.shed_spill_capacity > 0
                         ? options_.shed_spill_capacity
                         : options_.queue_capacity;
  while (spill.size() > cap) {
    // Shed the oldest staged *tuple*; watermarks/flushes are load-bearing
    // and must survive.
    auto it = std::find_if(spill.begin(), spill.end(), [](const Event& e) {
      return e.kind == Event::Kind::kTuple;
    });
    if (it == spill.end()) break;
    spill.erase(it);
    ++overload_shed_;
    ++dropped_per_joiner_[joiner];
    ++overload_dropped_;
  }
}

bool ParallelEngineBase::DrainSpill(uint32_t joiner, int64_t deadline_ns) {
  auto& spill = spill_[joiner];
  while (!spill.empty()) {
    const PushResult r =
        queues_[joiner]->PushBounded(spill.front(), deadline_ns, &stop_);
    if (r != PushResult::kOk) return false;
    spill.pop_front();
  }
  return true;
}

bool ParallelEngineBase::EnqueueControl(uint32_t joiner, const Event& event,
                                        int64_t deadline_ns) {
  // A control event must never pass the tuples it gates: flush this
  // joiner's staged batch first so per-queue FIFO order is preserved.
  FlushStaged(joiner, deadline_ns);
  if (options_.overload_policy == OverloadPolicy::kShedOldest &&
      !spill_[joiner].empty()) {
    // Keep FIFO order with staged tuples: route the control event through
    // the spill too. It is never shed (EnqueueShedding skips non-tuples).
    spill_[joiner].push_back(event);
    return DrainSpill(joiner, deadline_ns);
  }
  return queues_[joiner]->PushBounded(event, deadline_ns, &stop_) ==
         PushResult::kOk;
}

EngineStats ParallelEngineBase::Finish() {
  EngineStats stats;
  if (!started_ || finished_) return stats;
  finished_ = true;

  const int64_t deadline =
      MonotonicNowNs() + options_.finish_timeout_us * 1000;

  Event flush;
  flush.kind = Event::Kind::kFlush;
  flush.watermark = kMaxTimestamp;
  bool flush_ok = true;
  for (uint32_t j = 0; j < options_.num_joiners; ++j) {
    if (!EnqueueControl(j, flush, deadline)) {
      flush_ok = false;
      ++control_lost_per_joiner_[j];
    }
  }
  if (!flush_ok) {
    RecordUnhealthy(Status::DeadlineExceeded(
        "Finish could not deliver flush before its deadline"));
    stop_.store(true, std::memory_order_release);
  }

  // Joiners exit on flush (or on the stop token). Bound the wait so a
  // wedged joiner cannot hang Finish: on expiry, raise the stop token —
  // every blocking path under engine control polls it.
  while (exited_.load(std::memory_order_acquire) < options_.num_joiners) {
    if (MonotonicNowNs() >= deadline) {
      RecordUnhealthy(Status::DeadlineExceeded(
          "joiners did not exit before the finish deadline"));
      stop_.store(true, std::memory_order_release);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  for (auto& t : threads_) t.join();
  threads_.clear();
  watchdog_.Stop();
  StopAuxiliary();

  if (wal_ != nullptr) {
    // Joiners have exited, so a snapshot in flight is either complete or
    // failed — settle it, then make every logged byte durable.
    wal_->PollSnapshotCompletion();
    wal_->Flush(/*sync=*/true);
    stats.wal = wal_->StatsSnapshot();
  }

  stats.input_tuples = pushed_.load(std::memory_order_relaxed);
  stats.overload_dropped = overload_dropped_;
  stats.overload_shed = overload_shed_;
  stats.per_joiner_overload_dropped = dropped_per_joiner_;
  stats.per_joiner_control_lost = control_lost_per_joiner_;
  for (uint64_t lost : control_lost_per_joiner_) stats.control_lost += lost;
  stats.late = multi_mode_ ? queries_[0].late : late_gate_.stats();
  stats.warnings = watchdog_.TakeWarnings();
  stats.warnings.insert(stats.warnings.end(), wal_warnings_.begin(),
                        wal_warnings_.end());
  if (stats.control_lost > 0) {
    stats.warnings.push_back(
        "lost " + std::to_string(stats.control_lost) +
        " control event(s) (watermark/flush) to the stop token or a "
        "deadline; downstream eviction/finalization may be stale");
  }
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    stats.health = health_;
  }
  stats.numa_active = placement_.active;
  stats.numa_nodes = placement_.num_nodes;
  if (placement_.active) {
    stats.numa_pin_cpus = placement_.joiner_cpu;
    stats.numa_joiner_node = placement_.joiner_node;
  }
  CollectStats(&stats);
  if (options_.collect_breakdown) {
    for (int64_t b : busy_ns_) stats.breakdown.busy_ns += b;
  }
  if (options_.collect_cpu_util) {
    const int64_t now = MonotonicNowNs();
    for (auto& tracker : util_trackers_) {
      stats.utilization.push_back(tracker.UtilizationSeries(now));
    }
  }
  return stats;
}

void ParallelEngineBase::JoinerMain(uint32_t joiner) {
  SetCurrentThreadName("joiner-" + std::to_string(joiner));
  if (placement_.active) {
    // Pin per the placement plan; pinning to a CPU the host lacks (fake
    // topologies, shrunken cpusets) is a silent no-op inside TryPin.
    if (placement_.joiner_cpu[joiner] >= 0) {
      TryPinCurrentThreadTo(placement_.joiner_cpu[joiner]);
    }
  } else if (options_.pin_threads) {
    TryPinCurrentThreadTo(static_cast<int>(joiner) % NumCpus());
  }

  const bool track_util = options_.collect_cpu_util;
  const bool track_busy = track_util || options_.collect_breakdown;
  const bool inject = options_.fault_injector != nullptr;
  uint64_t events_seen = 0;
  Backoff backoff;
  // Drain in batches: one shared head update (PopBatch) and one consumed
  // counter bump per batch rather than per event.
  const size_t drain_batch = std::max<size_t>(batch_size_, 64);
  std::vector<Event> batch(drain_batch);
  bool flushed = false;
  bool aborted = false;
  while (!flushed && !aborted && !stop_requested()) {
    size_t got = queues_[joiner]->PopBatch(batch.data(), drain_batch);
    if (got == 0) {
      OnIdle(joiner);
      backoff.Pause();
      continue;
    }
    backoff.Reset();

    const int64_t busy_start = track_busy ? MonotonicNowNs() : 0;
    // Drain a burst: everything currently queued plus the batch in hand.
    do {
      uint64_t processed = 0;
      for (size_t i = 0; i < got; ++i) {
        if (inject && !InjectFaults(joiner, events_seen)) {
          aborted = true;
          break;
        }
        ++events_seen;
        ++processed;
        const Event& ev = batch[i];
        switch (ev.kind) {
          case Event::Kind::kTuple:
            OnTuple(joiner, ev);
            break;
          case Event::Kind::kWatermark:
            OnWatermark(joiner, ev.watermark);
            break;
          case Event::Kind::kFlush:
            OnWatermark(joiner, kMaxTimestamp);
            OnFlush(joiner);
            flushed = true;
            break;
          case Event::Kind::kSnapshot:
            HandleSnapshotEvent(joiner,
                                static_cast<uint64_t>(ev.watermark));
            break;
          case Event::Kind::kAddQuery: {
            JoinerView& view = joiner_views_[joiner];
            QueryRuntime* q = ev.query;
            if (view.queries.size() <= q->ord) {
              view.queries.resize(q->ord + 1, nullptr);
              view.accepting.resize(q->ord + 1, false);
            }
            view.queries[q->ord] = q;
            view.accepting[q->ord] = true;
            OnAddQuery(joiner, *q);
            break;
          }
          case Event::Kind::kRemoveQuery:
            joiner_views_[joiner].accepting[ev.query->ord] = false;
            OnRemoveQuery(joiner, ev.query->ord);
            break;
        }
        if (flushed) break;
      }
      consumed_[joiner].value.fetch_add(processed,
                                        std::memory_order_relaxed);
      if (flushed || aborted || stop_requested()) break;
      got = queues_[joiner]->PopBatch(batch.data(), drain_batch);
    } while (got > 0);

    if (track_busy) {
      const int64_t busy_end = MonotonicNowNs();
      busy_ns_[joiner] += busy_end - busy_start;
      if (track_util) util_trackers_[joiner].AddBusy(busy_start, busy_end);
    }
  }
  exited_.fetch_add(1, std::memory_order_release);
}

bool ParallelEngineBase::InjectFaults(uint32_t joiner, uint64_t events_seen) {
  const FaultInjector* f = options_.fault_injector;
  if (f->SlowsJoiner(joiner)) {
    std::this_thread::sleep_for(std::chrono::microseconds(f->slow_delay_us));
  }
  if (f->StallsJoiner(joiner, events_seen)) {
    // Park like a thread wedged in a downstream call: releases only when
    // the watchdog or Finish raises the stop token.
    while (!stop_requested()) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    return false;
  }
  return true;
}

Status ParallelEngineBase::Health() const {
  std::lock_guard<std::mutex> lock(health_mu_);
  return health_;
}

WatchdogSample ParallelEngineBase::SampleProgress() const {
  WatchdogSample sample;
  if (consumed_ == nullptr) return sample;  // not started yet
  const uint32_t n = options_.num_joiners;
  sample.queue_depths.reserve(n);
  sample.consumed.reserve(n);
  for (uint32_t j = 0; j < n; ++j) {
    sample.queue_depths.push_back(queues_[j]->SizeApprox());
    sample.consumed.push_back(
        consumed_[j].value.load(std::memory_order_relaxed));
  }
  sample.pushed = pushed_.load(std::memory_order_relaxed);
  sample.watermarks = watermarks_signaled_.load(std::memory_order_relaxed);
  sample.numa_active = placement_.active;
  sample.numa_nodes = placement_.num_nodes;
  if (placement_.active) {
    sample.numa_pin_cpus = placement_.joiner_cpu;
    sample.numa_joiner_node = placement_.joiner_node;
  }
  SampleMem(&sample);
  return sample;
}

void ParallelEngineBase::StartWatchdog() {
  watchdog_.Start(
      options_.watchdog, [this] { return SampleProgress(); },
      [this](const Status& status) {
        RecordUnhealthy(status);
        stop_.store(true, std::memory_order_release);
      });
}

void ParallelEngineBase::RecordUnhealthy(const Status& status) {
  std::lock_guard<std::mutex> lock(health_mu_);
  if (health_.ok()) health_ = status;
}

void ParallelEngineBase::Sync() {
  FlushAllStaged(/*deadline_ns=*/-1);
  if (wal_ != nullptr) {
    wal_->PollSnapshotCompletion();
    wal_->Flush(/*sync=*/true);
  }
}

void ParallelEngineBase::HandleSnapshotEvent(uint32_t joiner,
                                             uint64_t epoch) {
  if (wal_ == nullptr) return;
  std::vector<StreamEvent> state;
  if (!CollectSnapshotState(joiner, &state)) {
    // Engine without snapshot support (e.g. SplitJoin): abort the epoch;
    // the log is simply never truncated and recovery replays all of it.
    wal_->MarkSnapshotFailed(epoch);
    return;
  }
  // A write failure marked the epoch failed inside the manager already.
  (void)wal_->WriteJoinerSnapshot(epoch, joiner, state);
}

Status ParallelEngineBase::BeginRecovery() {
  if (wal_ == nullptr) return Status::OK();  // durability off: trivial
  if (!started_ || finished_) {
    return Status::FailedPrecondition(
        "BeginRecovery needs a started, unfinished engine");
  }
  if (ingest_begun_ || replaying_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition(
        "recovery must precede the first Push/SignalWatermark");
  }
  recovery_done_ = true;  // even an empty plan counts as "recovered"
  recovery_start_us_ = MonotonicNowUs();
  auto plan = std::make_unique<WalReplayPlan>();
  const Status s = BuildReplayPlan(wal_->dir(), plan.get());
  if (!s.ok()) return s;
  if (options_.durability.recover_to_watermark) {
    // Stop the replay at the watermark-consistent cut and physically
    // truncate past it: a later recovery must not resurrect records
    // this one logically discarded (the router replays them itself,
    // and LSN-dedup cannot catch records that only *look* new).
    const uint64_t cut = plan->watermark_cut_lsn;
    uint64_t dropped = 0;
    while (!plan->records.empty() && plan->records.back().lsn > cut) {
      plan->records.pop_back();
      ++dropped;
    }
    const Status ts = TruncateLogPastLsn(wal_->dir(), cut, nullptr);
    if (!ts.ok()) return ts;
    if (plan->max_lsn > cut) plan->max_lsn = cut;
    recovered_watermark_ = plan->watermark_cut;
    if (dropped > 0) {
      wal_warnings_.push_back(
          "watermark-cut recovery dropped " + std::to_string(dropped) +
          " record(s) past lsn " + std::to_string(cut) +
          "; a router replays them from its un-acked buffer");
    }
  }
  replay_plan_ = std::move(plan);
  replay_stage_ = 0;
  replay_pos_ = 0;
  replayed_tuples_ = 0;
  replayed_watermarks_ = 0;
  replaying_.store(true, std::memory_order_release);
  if (!replay_plan_->catalog.empty()) {
    // Restore the standing-query catalog in force at the snapshot
    // barrier *before* any snapshot event is pushed, so restored probes
    // and pendings land under the right set of queries. With replaying_
    // set, the adds do not re-log themselves.
    QueryCatalog catalog;
    const Status cs = QueryCatalog::Parse(replay_plan_->catalog, &catalog);
    if (!cs.ok()) {
      // The manifest is CRC-guarded; a catalog that fails to parse is
      // real damage, not a torn tail.
      replay_plan_.reset();
      replaying_.store(false, std::memory_order_release);
      return cs;
    }
    ApplyManifestCatalog(catalog);
  }
  return Status::OK();
}

bool ParallelEngineBase::RecoveryStep(size_t max_events) {
  if (!replaying_.load(std::memory_order_relaxed)) return false;
  size_t budget = max_events == 0 ? SIZE_MAX : max_events;
  WalReplayPlan& plan = *replay_plan_;
  while (budget > 0) {
    if (replay_stage_ == 0) {
      // Snapshot contents re-enter through normal ingest; the gate's
      // watermark is still -inf here, so every tuple is admitted no
      // matter how old.
      if (replay_pos_ >= plan.snapshot_events.size()) {
        replay_stage_ = 1;
        replay_pos_ = 0;
        continue;
      }
      Push(plan.snapshot_events[replay_pos_++], MonotonicNowUs());
      ++replayed_tuples_;
      --budget;
    } else if (replay_stage_ == 1) {
      if (plan.has_snapshot) {
        // Restore the watermark in force at the snapshot barrier before
        // the log suffix, so suffix-replay gate decisions match the
        // original run.
        SignalWatermark(plan.restore_watermark);
        ++replayed_watermarks_;
        --budget;
      }
      replay_stage_ = 2;
      replay_pos_ = 0;
    } else if (replay_stage_ == 2) {
      if (replay_pos_ >= plan.records.size()) {
        replay_stage_ = 3;
        break;
      }
      const WalReplayRecord& record = plan.records[replay_pos_++];
      switch (record.kind) {
        case WalReplayRecord::Kind::kWatermark:
          SignalWatermark(record.watermark);
          ++replayed_watermarks_;
          break;
        case WalReplayRecord::Kind::kAddQuery: {
          const Status s = AddQuery(record.query_id, record.query_spec);
          if (!s.ok()) {
            wal_warnings_.push_back("replayed add-query '" +
                                    record.query_id +
                                    "' rejected: " + s.message());
          }
          break;
        }
        case WalReplayRecord::Kind::kRemoveQuery: {
          const Status s = RemoveQuery(record.query_id);
          if (!s.ok()) {
            wal_warnings_.push_back("replayed remove-query '" +
                                    record.query_id +
                                    "' rejected: " + s.message());
          }
          break;
        }
        case WalReplayRecord::Kind::kTuple:
          Push(record.event, MonotonicNowUs());
          ++replayed_tuples_;
          break;
      }
      --budget;
    } else {
      break;
    }
  }
  if (replay_stage_ >= 2 && replay_pos_ >= plan.records.size()) {
    FinishRecovery();
    return false;
  }
  return true;
}

void ParallelEngineBase::FinishRecovery() {
  WalReplayPlan& plan = *replay_plan_;
  FlushAllStaged(/*deadline_ns=*/-1);
  wal_->RecordReplay(replayed_tuples_, replayed_watermarks_,
                     plan.torn_tails,
                     MonotonicNowUs() - recovery_start_us_);
  wal_->ResumeAppends(plan.max_lsn + 1);
  if (plan.torn_tails > 0) {
    wal_warnings_.push_back(
        "recovery hit " + std::to_string(plan.torn_tails) +
        " torn log tail(s) (" + std::to_string(plan.torn_bytes) +
        " byte(s) discarded); loss is bounded by the fsync policy of the "
        "crashed run");
  }
  replay_plan_.reset();
  replaying_.store(false, std::memory_order_release);
}

bool ParallelEngineBase::Recovering() const {
  return replaying_.load(std::memory_order_acquire);
}

WalStats ParallelEngineBase::SampleWal() const {
  return wal_ != nullptr ? wal_->StatsSnapshot() : WalStats{};
}

void ParallelEngineBase::CrashForTest() {
  if (!started_ || finished_) return;
  finished_ = true;
  stop_.store(true, std::memory_order_release);
  for (auto& t : threads_) t.join();
  threads_.clear();
  watchdog_.Stop();
  StopAuxiliary();
  if (wal_ != nullptr) wal_->SimulateCrash();
}

}  // namespace oij
