#include "join/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/clock.h"
#include "common/thread_util.h"

namespace oij {

std::string_view OverloadPolicyName(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kBlock:
      return "block";
    case OverloadPolicy::kDropNewest:
      return "drop_newest";
    case OverloadPolicy::kShedOldest:
      return "shed_oldest";
  }
  return "unknown";
}

Status EngineOptions::Validate() const {
  if (num_joiners == 0) {
    return Status::InvalidArgument("num_joiners must be positive");
  }
  if (queue_capacity < 2) {
    return Status::InvalidArgument("queue_capacity must be >= 2");
  }
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  if (batch_size == 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }
  if (batch_flush_us < 0) {
    return Status::InvalidArgument("batch_flush_us must be non-negative");
  }
  if (drop_wait_us < 0) {
    return Status::InvalidArgument("drop_wait_us must be non-negative");
  }
  if (finish_timeout_us <= 0) {
    return Status::InvalidArgument("finish_timeout_us must be positive");
  }
  if (enable_watchdog) {
    if (watchdog.interval_ms <= 0) {
      return Status::InvalidArgument("watchdog.interval_ms must be positive");
    }
    if (watchdog.stall_intervals == 0 ||
        watchdog.watermark_freeze_intervals == 0) {
      return Status::InvalidArgument(
          "watchdog escalation thresholds must be positive");
    }
  }
  return Status::OK();
}

double EngineStats::ActualUnbalancedness() const {
  if (per_joiner_processed.empty()) return 0.0;
  double mean = 0.0;
  for (uint64_t c : per_joiner_processed) mean += static_cast<double>(c);
  mean /= static_cast<double>(per_joiner_processed.size());
  if (mean <= 0.0) return 0.0;
  double var = 0.0;
  for (uint64_t c : per_joiner_processed) {
    const double d = static_cast<double>(c) - mean;
    var += d * d;
  }
  var /= static_cast<double>(per_joiner_processed.size());
  return std::sqrt(var) / mean;
}

ParallelEngineBase::ParallelEngineBase(const QuerySpec& spec,
                                       const EngineOptions& options,
                                       ResultSink* sink)
    : spec_(spec), options_(options), sink_(sink) {
  queues_.reserve(options_.num_joiners);
  for (uint32_t j = 0; j < options_.num_joiners; ++j) {
    queues_.push_back(
        std::make_unique<SpscQueue<Event>>(options_.queue_capacity));
  }
  spill_.resize(options_.num_joiners);
  dropped_per_joiner_.assign(options_.num_joiners, 0);
  control_lost_per_joiner_.assign(options_.num_joiners, 0);

  // Staging deeper than the ring only adds latency, never throughput.
  batch_size_ = std::min(options_.batch_size, options_.queue_capacity);
  staged_.resize(options_.num_joiners);
  if (batch_size_ > 1) {
    for (auto& stage : staged_) stage.reserve(batch_size_);
  }
}

ParallelEngineBase::~ParallelEngineBase() {
  // Engines must be Finish()ed; tolerate abandonment by draining anyway.
  if (started_ && !finished_) Finish();
}

Status ParallelEngineBase::Start() {
  if (started_) return Status::FailedPrecondition("engine already started");
  Status s = options_.Validate();
  if (!s.ok()) return s;
  s = spec_.Validate();
  if (!s.ok()) return s;

  run_origin_ns_ = MonotonicNowNs();
  busy_ns_.assign(options_.num_joiners, 0);
  if (options_.collect_cpu_util) {
    util_trackers_.clear();
    util_trackers_.reserve(options_.num_joiners);
    for (uint32_t j = 0; j < options_.num_joiners; ++j) {
      util_trackers_.emplace_back(run_origin_ns_,
                                  options_.cpu_util_interval_ns);
    }
  }

  late_gate_.Configure(spec_.late_policy, options_.late_sink);
  consumed_ = std::make_unique<PaddedCounter[]>(options_.num_joiners);
  stop_.store(false, std::memory_order_release);
  exited_.store(0, std::memory_order_release);

  started_ = true;
  threads_.reserve(options_.num_joiners);
  for (uint32_t j = 0; j < options_.num_joiners; ++j) {
    threads_.emplace_back([this, j] { JoinerMain(j); });
  }
  StartAuxiliary();
  if (options_.enable_watchdog) StartWatchdog();
  return Status::OK();
}

void ParallelEngineBase::Push(const StreamEvent& event, int64_t arrival_us) {
  pushed_.fetch_add(1, std::memory_order_relaxed);
  if (stop_requested()) {
    // Aborted run: everything after the abort is shed at the door.
    ++overload_dropped_;
    return;
  }
  if (!late_gate_.Admit(event)) return;

  Event ev;
  ev.kind = Event::Kind::kTuple;
  ev.stream = event.stream;
  ev.tuple = event.tuple;
  ev.arrival_us = arrival_us;
  ev.seq = seq_++;
  Route(ev);

  // Time-bound flush: reuse the caller's arrival stamp as "now" so the
  // bound costs no clock read on the hot path.
  if (staged_total_ > 0 && options_.batch_flush_us > 0 &&
      arrival_us - earliest_staged_us_ >= options_.batch_flush_us) {
    FlushAllStaged(/*deadline_ns=*/-1);
  }
}

void ParallelEngineBase::SignalWatermark(Timestamp watermark) {
  const uint64_t attempt = watermark_attempts_++;
  if (options_.fault_injector != nullptr &&
      options_.fault_injector->WatermarkFrozen(attempt)) {
    return;  // injected frozen source: punctuation silently swallowed
  }
  late_gate_.ObserveWatermark(watermark);
  watermarks_signaled_.fetch_add(1, std::memory_order_relaxed);

  Event ev;
  ev.kind = Event::Kind::kWatermark;
  ev.watermark = watermark;
  ev.seq = seq_++;
  for (uint32_t j = 0; j < options_.num_joiners; ++j) {
    if (!EnqueueControl(j, ev, -1)) {
      // A watermark lost here (stop token raised while the ring stayed
      // full) would silently freeze this joiner's eviction and
      // finalization — account it so the run is marked non-pristine.
      ++control_lost_per_joiner_[j];
    }
  }
}

void ParallelEngineBase::FlushPending() { FlushAllStaged(/*deadline_ns=*/-1); }

void ParallelEngineBase::EnqueueTo(uint32_t joiner, const Event& event) {
  if (event.kind != Event::Kind::kTuple) {
    if (!EnqueueControl(joiner, event, -1)) {
      ++control_lost_per_joiner_[joiner];
    }
    return;
  }
  if (batch_size_ > 1) {
    auto& stage = staged_[joiner];
    if (staged_total_ == 0) earliest_staged_us_ = event.arrival_us;
    stage.push_back(event);
    ++staged_total_;
    if (stage.size() >= batch_size_) FlushStaged(joiner, /*deadline_ns=*/-1);
    return;
  }
  switch (options_.overload_policy) {
    case OverloadPolicy::kBlock: {
      const PushResult r =
          queues_[joiner]->PushBounded(event, /*deadline_ns=*/-1, &stop_);
      if (r != PushResult::kOk) {
        ++dropped_per_joiner_[joiner];
        ++overload_dropped_;
      }
      break;
    }
    case OverloadPolicy::kDropNewest: {
      const int64_t deadline =
          options_.drop_wait_us > 0
              ? MonotonicNowNs() + options_.drop_wait_us * 1000
              : 0;
      const PushResult r = queues_[joiner]->PushBounded(event, deadline,
                                                        &stop_);
      if (r != PushResult::kOk) {
        ++dropped_per_joiner_[joiner];
        ++overload_dropped_;
      }
      break;
    }
    case OverloadPolicy::kShedOldest:
      EnqueueShedding(joiner, event);
      break;
  }
}

void ParallelEngineBase::FlushStaged(uint32_t joiner, int64_t deadline_ns) {
  auto& stage = staged_[joiner];
  if (stage.empty()) return;
  staged_total_ -= stage.size();
  PushTupleBatch(joiner, stage.data(), stage.size(), deadline_ns);
  stage.clear();
}

void ParallelEngineBase::FlushAllStaged(int64_t deadline_ns) {
  if (staged_total_ == 0) return;
  for (uint32_t j = 0; j < options_.num_joiners; ++j) {
    FlushStaged(j, deadline_ns);
  }
}

void ParallelEngineBase::PushTupleBatch(uint32_t joiner, const Event* events,
                                        size_t n, int64_t deadline_ns) {
  SpscQueue<Event>& queue = *queues_[joiner];
  switch (options_.overload_policy) {
    case OverloadPolicy::kBlock: {
      // Lossless backpressure: wait (stop-token aware) for the consumer.
      // `deadline_ns` is -1 except when Finish flushes with its bound.
      size_t i = 0;
      while (i < n) {
        i += queue.PushBatch(events + i, n - i);
        if (i >= n) break;
        if (stop_.load(std::memory_order_acquire) ||
            (deadline_ns >= 0 && MonotonicNowNs() >= deadline_ns)) {
          dropped_per_joiner_[joiner] += n - i;
          overload_dropped_ += n - i;
          return;
        }
        std::this_thread::yield();
      }
      break;
    }
    case OverloadPolicy::kDropNewest: {
      int64_t deadline = deadline_ns;
      if (deadline < 0) {
        deadline = options_.drop_wait_us > 0
                       ? MonotonicNowNs() + options_.drop_wait_us * 1000
                       : 0;
      }
      size_t i = 0;
      while (i < n) {
        i += queue.PushBatch(events + i, n - i);
        if (i >= n) break;
        if (stop_.load(std::memory_order_acquire) || deadline == 0 ||
            MonotonicNowNs() >= deadline) {
          dropped_per_joiner_[joiner] += n - i;
          overload_dropped_ += n - i;
          return;
        }
        std::this_thread::yield();
      }
      break;
    }
    case OverloadPolicy::kShedOldest: {
      // FIFO with the spill: ring-push directly only while the spill is
      // empty, then stage the remainder behind it and shed the oldest.
      auto& spill = spill_[joiner];
      size_t i = 0;
      if (spill.empty()) {
        while (i < n) {
          const size_t pushed = queue.PushBatch(events + i, n - i);
          if (pushed == 0) break;
          i += pushed;
        }
      }
      for (; i < n; ++i) spill.push_back(events[i]);
      while (!spill.empty() && queue.TryPush(spill.front())) {
        spill.pop_front();
      }
      ShedSpillOverflow(joiner);
      break;
    }
  }
}

void ParallelEngineBase::EnqueueShedding(uint32_t joiner, const Event& event) {
  auto& spill = spill_[joiner];
  if (spill.empty() && queues_[joiner]->TryPush(event)) return;

  spill.push_back(event);
  // Opportunistic drain: move whatever fits right now.
  while (!spill.empty() && queues_[joiner]->TryPush(spill.front())) {
    spill.pop_front();
  }
  ShedSpillOverflow(joiner);
}

void ParallelEngineBase::ShedSpillOverflow(uint32_t joiner) {
  auto& spill = spill_[joiner];
  const size_t cap = options_.shed_spill_capacity > 0
                         ? options_.shed_spill_capacity
                         : options_.queue_capacity;
  while (spill.size() > cap) {
    // Shed the oldest staged *tuple*; watermarks/flushes are load-bearing
    // and must survive.
    auto it = std::find_if(spill.begin(), spill.end(), [](const Event& e) {
      return e.kind == Event::Kind::kTuple;
    });
    if (it == spill.end()) break;
    spill.erase(it);
    ++overload_shed_;
    ++dropped_per_joiner_[joiner];
    ++overload_dropped_;
  }
}

bool ParallelEngineBase::DrainSpill(uint32_t joiner, int64_t deadline_ns) {
  auto& spill = spill_[joiner];
  while (!spill.empty()) {
    const PushResult r =
        queues_[joiner]->PushBounded(spill.front(), deadline_ns, &stop_);
    if (r != PushResult::kOk) return false;
    spill.pop_front();
  }
  return true;
}

bool ParallelEngineBase::EnqueueControl(uint32_t joiner, const Event& event,
                                        int64_t deadline_ns) {
  // A control event must never pass the tuples it gates: flush this
  // joiner's staged batch first so per-queue FIFO order is preserved.
  FlushStaged(joiner, deadline_ns);
  if (options_.overload_policy == OverloadPolicy::kShedOldest &&
      !spill_[joiner].empty()) {
    // Keep FIFO order with staged tuples: route the control event through
    // the spill too. It is never shed (EnqueueShedding skips non-tuples).
    spill_[joiner].push_back(event);
    return DrainSpill(joiner, deadline_ns);
  }
  return queues_[joiner]->PushBounded(event, deadline_ns, &stop_) ==
         PushResult::kOk;
}

EngineStats ParallelEngineBase::Finish() {
  EngineStats stats;
  if (!started_ || finished_) return stats;
  finished_ = true;

  const int64_t deadline =
      MonotonicNowNs() + options_.finish_timeout_us * 1000;

  Event flush;
  flush.kind = Event::Kind::kFlush;
  flush.watermark = kMaxTimestamp;
  bool flush_ok = true;
  for (uint32_t j = 0; j < options_.num_joiners; ++j) {
    if (!EnqueueControl(j, flush, deadline)) {
      flush_ok = false;
      ++control_lost_per_joiner_[j];
    }
  }
  if (!flush_ok) {
    RecordUnhealthy(Status::DeadlineExceeded(
        "Finish could not deliver flush before its deadline"));
    stop_.store(true, std::memory_order_release);
  }

  // Joiners exit on flush (or on the stop token). Bound the wait so a
  // wedged joiner cannot hang Finish: on expiry, raise the stop token —
  // every blocking path under engine control polls it.
  while (exited_.load(std::memory_order_acquire) < options_.num_joiners) {
    if (MonotonicNowNs() >= deadline) {
      RecordUnhealthy(Status::DeadlineExceeded(
          "joiners did not exit before the finish deadline"));
      stop_.store(true, std::memory_order_release);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  for (auto& t : threads_) t.join();
  threads_.clear();
  watchdog_.Stop();
  StopAuxiliary();

  stats.input_tuples = pushed_.load(std::memory_order_relaxed);
  stats.overload_dropped = overload_dropped_;
  stats.overload_shed = overload_shed_;
  stats.per_joiner_overload_dropped = dropped_per_joiner_;
  stats.per_joiner_control_lost = control_lost_per_joiner_;
  for (uint64_t lost : control_lost_per_joiner_) stats.control_lost += lost;
  stats.late = late_gate_.stats();
  stats.warnings = watchdog_.TakeWarnings();
  if (stats.control_lost > 0) {
    stats.warnings.push_back(
        "lost " + std::to_string(stats.control_lost) +
        " control event(s) (watermark/flush) to the stop token or a "
        "deadline; downstream eviction/finalization may be stale");
  }
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    stats.health = health_;
  }
  CollectStats(&stats);
  if (options_.collect_breakdown) {
    for (int64_t b : busy_ns_) stats.breakdown.busy_ns += b;
  }
  if (options_.collect_cpu_util) {
    const int64_t now = MonotonicNowNs();
    for (auto& tracker : util_trackers_) {
      stats.utilization.push_back(tracker.UtilizationSeries(now));
    }
  }
  return stats;
}

void ParallelEngineBase::JoinerMain(uint32_t joiner) {
  SetCurrentThreadName("joiner-" + std::to_string(joiner));
  if (options_.pin_threads) {
    TryPinCurrentThreadTo(static_cast<int>(joiner) % NumCpus());
  }

  const bool track_util = options_.collect_cpu_util;
  const bool track_busy = track_util || options_.collect_breakdown;
  const bool inject = options_.fault_injector != nullptr;
  uint64_t events_seen = 0;
  Backoff backoff;
  // Drain in batches: one shared head update (PopBatch) and one consumed
  // counter bump per batch rather than per event.
  const size_t drain_batch = std::max<size_t>(batch_size_, 64);
  std::vector<Event> batch(drain_batch);
  bool flushed = false;
  bool aborted = false;
  while (!flushed && !aborted && !stop_requested()) {
    size_t got = queues_[joiner]->PopBatch(batch.data(), drain_batch);
    if (got == 0) {
      OnIdle(joiner);
      backoff.Pause();
      continue;
    }
    backoff.Reset();

    const int64_t busy_start = track_busy ? MonotonicNowNs() : 0;
    // Drain a burst: everything currently queued plus the batch in hand.
    do {
      uint64_t processed = 0;
      for (size_t i = 0; i < got; ++i) {
        if (inject && !InjectFaults(joiner, events_seen)) {
          aborted = true;
          break;
        }
        ++events_seen;
        ++processed;
        const Event& ev = batch[i];
        switch (ev.kind) {
          case Event::Kind::kTuple:
            OnTuple(joiner, ev);
            break;
          case Event::Kind::kWatermark:
            OnWatermark(joiner, ev.watermark);
            break;
          case Event::Kind::kFlush:
            OnWatermark(joiner, kMaxTimestamp);
            OnFlush(joiner);
            flushed = true;
            break;
        }
        if (flushed) break;
      }
      consumed_[joiner].value.fetch_add(processed,
                                        std::memory_order_relaxed);
      if (flushed || aborted || stop_requested()) break;
      got = queues_[joiner]->PopBatch(batch.data(), drain_batch);
    } while (got > 0);

    if (track_busy) {
      const int64_t busy_end = MonotonicNowNs();
      busy_ns_[joiner] += busy_end - busy_start;
      if (track_util) util_trackers_[joiner].AddBusy(busy_start, busy_end);
    }
  }
  exited_.fetch_add(1, std::memory_order_release);
}

bool ParallelEngineBase::InjectFaults(uint32_t joiner, uint64_t events_seen) {
  const FaultInjector* f = options_.fault_injector;
  if (f->SlowsJoiner(joiner)) {
    std::this_thread::sleep_for(std::chrono::microseconds(f->slow_delay_us));
  }
  if (f->StallsJoiner(joiner, events_seen)) {
    // Park like a thread wedged in a downstream call: releases only when
    // the watchdog or Finish raises the stop token.
    while (!stop_requested()) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    return false;
  }
  return true;
}

Status ParallelEngineBase::Health() const {
  std::lock_guard<std::mutex> lock(health_mu_);
  return health_;
}

WatchdogSample ParallelEngineBase::SampleProgress() const {
  WatchdogSample sample;
  if (consumed_ == nullptr) return sample;  // not started yet
  const uint32_t n = options_.num_joiners;
  sample.queue_depths.reserve(n);
  sample.consumed.reserve(n);
  for (uint32_t j = 0; j < n; ++j) {
    sample.queue_depths.push_back(queues_[j]->SizeApprox());
    sample.consumed.push_back(
        consumed_[j].value.load(std::memory_order_relaxed));
  }
  sample.pushed = pushed_.load(std::memory_order_relaxed);
  sample.watermarks = watermarks_signaled_.load(std::memory_order_relaxed);
  SampleMem(&sample);
  return sample;
}

void ParallelEngineBase::StartWatchdog() {
  watchdog_.Start(
      options_.watchdog, [this] { return SampleProgress(); },
      [this](const Status& status) {
        RecordUnhealthy(status);
        stop_.store(true, std::memory_order_release);
      });
}

void ParallelEngineBase::RecordUnhealthy(const Status& status) {
  std::lock_guard<std::mutex> lock(health_mu_);
  if (health_.ok()) health_ = status;
}

}  // namespace oij
