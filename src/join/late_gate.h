#ifndef OIJ_JOIN_LATE_GATE_H_
#define OIJ_JOIN_LATE_GATE_H_

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "common/types.h"
#include "core/query_spec.h"
#include "stream/generator.h"

namespace oij {

/// Counters for tuples that arrived after the watermark had passed their
/// timestamp (lateness-bound violations). Merged into EngineStats.
struct LateStats {
  uint64_t tuples = 0;        ///< total violations observed
  uint64_t dropped = 0;       ///< removed from the join (kDropAndCount)
  uint64_t side_channel = 0;  ///< handed to the LateSink (kSideChannel)
  uint64_t joined = 0;        ///< joined best-effort (kBestEffortJoin)
  uint64_t base = 0;          ///< violations on the base stream
  uint64_t probe = 0;         ///< violations on the probe stream
};

/// Receives tuples diverted by LatePolicy::kSideChannel. Called from the
/// engine's driver thread, synchronously with Push.
class LateSink {
 public:
  virtual ~LateSink() = default;

  /// `watermark` is the watermark the tuple violated.
  virtual void OnLateTuple(const StreamEvent& event, Timestamp watermark) = 0;
};

/// Collects diverted tuples under a mutex (tests, dead-letter replay).
class CollectingLateSink : public LateSink {
 public:
  void OnLateTuple(const StreamEvent& event, Timestamp /*watermark*/) override {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(event);
  }

  std::vector<StreamEvent> TakeEvents() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::move(events_);
  }

 private:
  std::mutex mu_;
  std::vector<StreamEvent> events_;
};

/// Router-side lateness check shared by every engine.
///
/// A tuple is late iff its timestamp is below the last watermark the
/// driver has signaled — at that point downstream state for the tuple's
/// windows may already be finalized/evicted, so the exactness guarantee
/// cannot cover it. Detecting at the router (single driver thread, no
/// synchronization) gives every engine identical late semantics, so their
/// counters agree with each other and with the reference replay.
class LatenessGate {
 public:
  void Configure(LatePolicy policy, LateSink* sink) {
    policy_ = policy;
    sink_ = sink;
  }

  /// Watermarks are taken monotonically (a regressing source never
  /// widens the late window).
  void ObserveWatermark(Timestamp watermark) {
    if (watermark > last_watermark_) last_watermark_ = watermark;
  }

  /// Returns true when the event should proceed into the join. Counts
  /// the violation either way.
  bool Admit(const StreamEvent& event) {
    if (last_watermark_ == kMinTimestamp ||
        event.tuple.ts >= last_watermark_) {
      return true;
    }
    ++stats_.tuples;
    if (event.stream == StreamId::kBase) {
      ++stats_.base;
    } else {
      ++stats_.probe;
    }
    switch (policy_) {
      case LatePolicy::kBestEffortJoin:
        ++stats_.joined;
        return true;
      case LatePolicy::kDropAndCount:
        ++stats_.dropped;
        return false;
      case LatePolicy::kSideChannel:
        ++stats_.side_channel;
        if (sink_ != nullptr) sink_->OnLateTuple(event, last_watermark_);
        return false;
    }
    return true;
  }

  const LateStats& stats() const { return stats_; }
  Timestamp last_watermark() const { return last_watermark_; }

 private:
  LatePolicy policy_ = LatePolicy::kBestEffortJoin;
  LateSink* sink_ = nullptr;
  Timestamp last_watermark_ = kMinTimestamp;
  LateStats stats_;
};

}  // namespace oij

#endif  // OIJ_JOIN_LATE_GATE_H_
