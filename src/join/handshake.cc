#include "join/handshake.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/clock.h"
#include "common/thread_util.h"

namespace oij {

namespace {
/// Chain sentinel: forwarded hop to hop after the final base tuple.
constexpr Timestamp kSentinelTs = kMaxTimestamp;
}  // namespace

HandshakeOijEngine::HandshakeOijEngine(const QuerySpec& spec,
                                       const EngineOptions& options,
                                       ResultSink* sink)
    : spec_(spec), options_(options), sink_(sink) {
  for (uint32_t j = 0; j < options_.num_joiners; ++j) {
    direct_queues_.push_back(
        std::make_unique<SpscQueue<Event>>(options_.queue_capacity));
    chain_queues_.push_back(
        std::make_unique<SpscQueue<ChainMsg>>(options_.queue_capacity));
    NodeArena* arena = nullptr;
    if (options_.pooled_alloc) {
      arenas_.push_back(std::make_unique<NodeArena>());
      arena = arenas_.back().get();
    }
    states_.push_back(
        std::make_unique<JoinerState>(arena, /*seed=*/0x4a5d + j));
    states_.back()->cache_probe =
        SampledCacheProbe(options_.cache_sim, options_.cache_sample_period);
  }
}

HandshakeOijEngine::~HandshakeOijEngine() {
  if (started_ && !finished_) Finish();
}

Status HandshakeOijEngine::Start() {
  if (started_) return Status::FailedPrecondition("engine already started");
  Status s = options_.Validate();
  if (!s.ok()) return s;
  s = spec_.Validate();
  if (!s.ok()) return s;
  started_ = true;
  busy_ns_.assign(options_.num_joiners, 0);
  late_gate_.Configure(spec_.late_policy, options_.late_sink);
  dropped_per_joiner_.assign(options_.num_joiners, 0);
  consumed_ = std::make_unique<PaddedCounter[]>(options_.num_joiners);
  stop_.store(false, std::memory_order_release);
  exited_.store(0, std::memory_order_release);
  for (uint32_t j = 0; j < options_.num_joiners; ++j) {
    threads_.emplace_back([this, j] { JoinerMain(j); });
  }
  if (options_.enable_watchdog) StartWatchdog();
  return Status::OK();
}

void HandshakeOijEngine::InjectBase(const Tuple& base, int64_t arrival_us,
                                    Timestamp required_wm,
                                    int64_t deadline_ns) {
  ChainMsg msg;
  msg.base = base;
  msg.arrival_us = arrival_us;
  msg.required_wm = required_wm;
  msg.min = std::numeric_limits<double>::infinity();
  msg.max = -std::numeric_limits<double>::infinity();
  chain_queues_[0]->PushBounded(msg, deadline_ns, &stop_);
}

void HandshakeOijEngine::Push(const StreamEvent& event, int64_t arrival_us) {
  pushed_.fetch_add(1, std::memory_order_relaxed);
  if (stop_requested()) {
    ++overload_dropped_;
    return;
  }
  if (!late_gate_.Admit(event)) return;
  if (event.stream == StreamId::kProbe) {
    // Storage is spread round-robin across the chain.
    Event ev;
    ev.kind = Event::Kind::kTuple;
    ev.stream = StreamId::kProbe;
    ev.tuple = event.tuple;
    ev.arrival_us = arrival_us;
    const uint32_t j =
        static_cast<uint32_t>(store_rr_++ % options_.num_joiners);
    if (options_.overload_policy == OverloadPolicy::kBlock) {
      if (direct_queues_[j]->PushBounded(ev, /*deadline_ns=*/-1, &stop_) !=
          PushResult::kOk) {
        ++dropped_per_joiner_[j];
        ++overload_dropped_;
      }
    } else {
      // The chain topology has no router-side reorder point, so
      // kShedOldest degrades to kDropNewest here: bounded wait, then
      // shed the incoming probe.
      const int64_t deadline =
          options_.drop_wait_us > 0
              ? MonotonicNowNs() + options_.drop_wait_us * 1000
              : 0;
      if (direct_queues_[j]->PushBounded(ev, deadline, &stop_) !=
          PushResult::kOk) {
        ++dropped_per_joiner_[j];
        ++overload_dropped_;
      }
    }
  } else if (spec_.emit_mode == EmitMode::kEager) {
    // Eager: straight into the chain; hops gate on their local horizon.
    InjectBase(event.tuple, arrival_us, kMinTimestamp);
  } else {
    // Watermark mode: the router gates, so the chain stays ts-ordered.
    router_pending_.push(RouterPending{event.tuple, arrival_us});
  }
}

void HandshakeOijEngine::ReleaseRouterPending(Timestamp up_to,
                                              Timestamp required_wm,
                                              int64_t deadline_ns) {
  while (!router_pending_.empty() &&
         router_pending_.top().base.ts + spec_.window.fol <= up_to) {
    const RouterPending& p = router_pending_.top();
    InjectBase(p.base, p.arrival_us, required_wm, deadline_ns);
    router_pending_.pop();
  }
}

void HandshakeOijEngine::SignalWatermark(Timestamp watermark) {
  const uint64_t attempt = watermark_attempts_++;
  if (options_.fault_injector != nullptr &&
      options_.fault_injector->WatermarkFrozen(attempt)) {
    return;
  }
  late_gate_.ObserveWatermark(watermark);
  watermarks_signaled_.fetch_add(1, std::memory_order_relaxed);
  Event ev;
  ev.kind = Event::Kind::kWatermark;
  ev.watermark = watermark;
  // Punctuations first: a base released against watermark W must find W's
  // punctuation (and every earlier probe) ahead of it in each hop's FIFO.
  // Punctuation is never dropped, whatever the overload policy.
  for (auto& q : direct_queues_) {
    q->PushBounded(ev, /*deadline_ns=*/-1, &stop_);
  }
  if (spec_.emit_mode == EmitMode::kWatermark && watermark > router_wm_) {
    router_wm_ = watermark;
    // Completeness holds strictly below the watermark.
    if (watermark != kMinTimestamp) {
      ReleaseRouterPending(watermark - 1, watermark);
    }
  }
}

bool HandshakeOijEngine::GatePassed(const JoinerState& s,
                                    const ChainMsg& msg) const {
  if (spec_.emit_mode == EmitMode::kWatermark) {
    return s.last_wm >= msg.required_wm;
  }
  Timestamp threshold = s.max_seen;
  if (s.last_wm == kMaxTimestamp) {
    threshold = kMaxTimestamp;
  } else if (s.last_wm != kMinTimestamp) {
    threshold = std::max(threshold, s.last_wm + spec_.lateness_us);
  }
  return msg.base.ts + spec_.window.fol <= threshold;
}

void HandshakeOijEngine::Emit(JoinerState& s, const ChainMsg& msg) {
  AggState agg;
  agg.sum = msg.sum;
  agg.count = msg.count;
  agg.min = msg.count == 0 ? std::numeric_limits<double>::infinity()
                           : msg.min;
  agg.max = msg.count == 0 ? -std::numeric_limits<double>::infinity()
                           : msg.max;
  JoinResult result;
  result.base = msg.base;
  result.aggregate = agg.Result(spec_.agg);
  result.match_count = agg.count;
  FillWindowStats(&result, agg);
  result.arrival_us = msg.arrival_us;
  result.emit_us = MonotonicNowUs();
  s.latency.Record(result.emit_us - msg.arrival_us);
  sink_->OnResult(result);
}

void HandshakeOijEngine::ProcessBase(uint32_t joiner, JoinerState& s,
                                     ChainMsg msg) {
  const Timestamp start = spec_.window.start_for(msg.base.ts);
  const Timestamp end = spec_.window.end_for(msg.base.ts);

  uint64_t op_visited = 0;
  uint64_t op_matched = 0;
  {
    ScopedTimerNs timer(&s.breakdown.lookup_ns);
    // The index seeks the window start and touches only in-window tuples
    // (visited == matched by construction), where the old per-key vector
    // filtered the whole buffer.
    op_visited = s.slice.ForEachInRange(
        msg.base.key, start, end, [&s, &msg](const Tuple& r) {
          s.cache_probe.Touch(&r);
          msg.sum += r.payload;
          ++msg.count;
          if (r.payload < msg.min) msg.min = r.payload;
          if (r.payload > msg.max) msg.max = r.payload;
        });
    op_matched = op_visited;
  }
  s.visited += op_visited;
  s.matched += op_matched;
  s.effectiveness_sum += op_visited == 0
                             ? 1.0
                             : static_cast<double>(op_matched) /
                                   static_cast<double>(op_visited);
  ++s.join_ops;

  if (joiner + 1 < options_.num_joiners) {
    chain_queues_[joiner + 1]->PushBounded(msg, /*deadline_ns=*/-1, &stop_);
  } else {
    Emit(s, msg);
  }
}

void HandshakeOijEngine::DrainPending(uint32_t joiner, JoinerState& s) {
  while (!s.pending.empty() && GatePassed(s, s.pending.front())) {
    ChainMsg msg = std::move(s.pending.front());
    s.pending.pop_front();
    ProcessBase(joiner, s, std::move(msg));
  }
}

void HandshakeOijEngine::Evict(JoinerState& s) {
  // The chain is ts-ordered (kWatermark), so every base this hop has not
  // yet probed for has ts >= min(oldest pending, newest chain arrival);
  // in kEager mode late bases are additionally bounded by the watermark.
  Timestamp floor = s.max_chain_ts;
  for (const ChainMsg& m : s.pending) {
    floor = std::min(floor, m.base.ts);  // front in wm mode; scan is cheap
  }
  if (spec_.emit_mode == EmitMode::kEager && s.last_wm != kMaxTimestamp) {
    floor = std::min(floor, s.last_wm);
  }
  if (floor == kMinTimestamp) return;
  const Timestamp bound =
      floor == kMaxTimestamp ? kMaxTimestamp : floor - spec_.window.pre;
  const size_t removed = s.slice.EvictBefore(bound);
  s.evicted += removed;
  s.buffered -= removed;
}

void HandshakeOijEngine::JoinerMain(uint32_t joiner) {
  SetCurrentThreadName("hs-joiner-" + std::to_string(joiner));
  if (options_.pin_threads) {
    TryPinCurrentThreadTo(static_cast<int>(joiner) % NumCpus());
  }
  JoinerState& s = *states_[joiner];
  Backoff backoff;
  bool chain_done = false;
  ChainMsg msg;

  // Direct input: probe storage and punctuations.
  auto drain_direct = [&]() {
    bool any = false;
    Event ev;
    while (direct_queues_[joiner]->TryPop(&ev)) {
      any = true;
      ++s.processed;
      consumed_[joiner].value.fetch_add(1, std::memory_order_relaxed);
      switch (ev.kind) {
        case Event::Kind::kTuple:
          if (ev.tuple.ts > s.max_seen) s.max_seen = ev.tuple.ts;
          s.slice.Insert(ev.tuple);
          ++s.buffered;
          if (s.buffered > s.peak_buffered) s.peak_buffered = s.buffered;
          break;
        case Event::Kind::kWatermark:
          // Only bookkeeping here: pending bases are drained strictly
          // after the direct queue is empty, otherwise a base could be
          // probed before probes sitting *behind* this punctuation in
          // the same queue have been stored.
          if (ev.watermark > s.last_wm) s.last_wm = ev.watermark;
          Evict(s);
          break;
        case Event::Kind::kFlush:
          s.last_wm = kMaxTimestamp;
          s.direct_flushed = true;
          break;
        case Event::Kind::kSnapshot:
          // Durability barriers are only emitted by ParallelEngineBase
          // engines; the handshake ring never sees one.
          break;
      }
    }
    return any;
  };

  const bool inject = options_.fault_injector != nullptr;
  while (!stop_requested()) {
    if (inject && !InjectFaults(joiner, s.processed)) break;
    const int64_t busy_start = MonotonicNowNs();
    bool any = drain_direct();
    // Chain input: base tuples in flight (and, eventually, the sentinel).
    bool chain_any = false;
    while (!chain_done && chain_queues_[joiner]->TryPop(&msg)) {
      any = chain_any = true;
      ++s.processed;
      consumed_[joiner].value.fetch_add(1, std::memory_order_relaxed);
      if (msg.base.ts == kSentinelTs) {
        chain_done = true;
        break;
      }
      if (msg.base.ts > s.max_seen) s.max_seen = msg.base.ts;
      if (msg.base.ts > s.max_chain_ts) s.max_chain_ts = msg.base.ts;
      s.pending.push_back(std::move(msg));
    }
    // Re-drain the direct queue before probing for the just-arrived
    // bases: popping a chain message synchronizes with the router's
    // earlier pushes, so every probe the router emitted before those
    // bases is now visible here. Without this, an eagerly gated base can
    // overtake its own in-window probes (the two queues are independent).
    if (chain_any) drain_direct();
    DrainPending(joiner, s);
    if (options_.collect_breakdown && any) {
      busy_ns_[joiner] += MonotonicNowNs() - busy_start;
    }

    if (chain_done && s.direct_flushed && s.pending.empty()) {
      // Everything drained; hand the sentinel to the next hop and exit.
      if (joiner + 1 < options_.num_joiners) {
        ChainMsg sentinel;
        sentinel.base.ts = kSentinelTs;
        chain_queues_[joiner + 1]->PushBounded(sentinel, /*deadline_ns=*/-1,
                                               &stop_);
      }
      break;
    }
    if (!any) backoff.Pause();
  }
  exited_.fetch_add(1, std::memory_order_release);
}

bool HandshakeOijEngine::InjectFaults(uint32_t joiner, uint64_t events_seen) {
  const FaultInjector* f = options_.fault_injector;
  if (f->SlowsJoiner(joiner)) {
    std::this_thread::sleep_for(std::chrono::microseconds(f->slow_delay_us));
  }
  if (f->StallsJoiner(joiner, events_seen)) {
    while (!stop_requested()) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    return false;
  }
  return true;
}

WatchdogSample HandshakeOijEngine::SampleProgress() const {
  WatchdogSample sample;
  if (consumed_ == nullptr) return sample;  // not started yet
  const uint32_t n = options_.num_joiners;
  sample.queue_depths.reserve(n);
  sample.consumed.reserve(n);
  for (uint32_t j = 0; j < n; ++j) {
    sample.queue_depths.push_back(direct_queues_[j]->SizeApprox() +
                                  chain_queues_[j]->SizeApprox());
    sample.consumed.push_back(
        consumed_[j].value.load(std::memory_order_relaxed));
  }
  sample.pushed = pushed_.load(std::memory_order_relaxed);
  sample.watermarks = watermarks_signaled_.load(std::memory_order_relaxed);
  for (const auto& arena : arenas_) {
    const NodeArena::Stats a = arena->snapshot();
    sample.arena_bytes += a.reserved_bytes;
    sample.arena_live_nodes += a.live_nodes;
    sample.arena_slab_recycles += a.slab_recycles;
  }
  return sample;
}

void HandshakeOijEngine::StartWatchdog() {
  watchdog_.Start(
      options_.watchdog, [this] { return SampleProgress(); },
      [this](const Status& status) {
        RecordUnhealthy(status);
        stop_.store(true, std::memory_order_release);
      });
}

void HandshakeOijEngine::RecordUnhealthy(const Status& status) {
  std::lock_guard<std::mutex> lock(health_mu_);
  if (health_.ok()) health_ = status;
}

EngineStats HandshakeOijEngine::Finish() {
  EngineStats stats;
  if (!started_ || finished_) return stats;
  finished_ = true;

  const int64_t deadline =
      MonotonicNowNs() + options_.finish_timeout_us * 1000;

  Event flush;
  flush.kind = Event::Kind::kFlush;
  flush.watermark = kMaxTimestamp;
  bool flush_ok = true;
  for (auto& q : direct_queues_) {
    if (q->PushBounded(flush, deadline, &stop_) != PushResult::kOk) {
      flush_ok = false;
    }
  }
  // Stragglers the watermark never reached, then the sentinel.
  ReleaseRouterPending(kMaxTimestamp - 1, kMaxTimestamp, deadline);
  ChainMsg sentinel;
  sentinel.base.ts = kSentinelTs;
  if (chain_queues_[0]->PushBounded(sentinel, deadline, &stop_) !=
      PushResult::kOk) {
    flush_ok = false;
  }
  if (!flush_ok) {
    RecordUnhealthy(Status::DeadlineExceeded(
        "Finish could not deliver flush before its deadline"));
    stop_.store(true, std::memory_order_release);
  }

  // Bounded wait for the chain to unwind; a wedged hop is released by the
  // stop token on deadline expiry so the joins below cannot hang.
  while (exited_.load(std::memory_order_acquire) < options_.num_joiners) {
    if (MonotonicNowNs() >= deadline) {
      RecordUnhealthy(Status::DeadlineExceeded(
          "joiners did not exit before the finish deadline"));
      stop_.store(true, std::memory_order_release);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  for (auto& t : threads_) t.join();
  threads_.clear();
  watchdog_.Stop();

  stats.input_tuples = pushed_.load(std::memory_order_relaxed);
  stats.overload_dropped = overload_dropped_;
  stats.per_joiner_overload_dropped = dropped_per_joiner_;
  stats.late = late_gate_.stats();
  stats.warnings = watchdog_.TakeWarnings();
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    stats.health = health_;
  }
  stats.per_joiner_processed.resize(states_.size());
  for (size_t j = 0; j < states_.size(); ++j) {
    JoinerState& s = *states_[j];
    stats.per_joiner_processed[j] = s.processed;
    stats.visited += s.visited;
    stats.matched += s.matched;
    stats.effectiveness_sum += s.effectiveness_sum;
    stats.join_ops += s.join_ops;
    stats.breakdown.Merge(s.breakdown);
    stats.latency.Merge(s.latency);
    stats.evicted_tuples += s.evicted;
    stats.peak_buffered_tuples += s.peak_buffered;
  }
  // One join op per hop; results are emitted once, at the chain tail.
  stats.results = states_.back()->join_ops;
  stats.mem.pooled = !arenas_.empty();
  for (const auto& arena : arenas_) {
    const NodeArena::Stats a = arena->snapshot();
    stats.mem.arena_reserved_bytes += a.reserved_bytes;
    stats.mem.arena_live_nodes += a.live_nodes;
    stats.mem.arena_allocations += a.allocations;
    stats.mem.arena_slab_recycles += a.slab_recycles;
    stats.mem.arena_oversize_allocs += a.oversize_allocs;
  }
  if (options_.collect_breakdown) {
    for (int64_t b : busy_ns_) stats.breakdown.busy_ns += b;
  }
  return stats;
}

}  // namespace oij
