#include "join/split_join.h"

#include <algorithm>
#include <limits>

#include "common/clock.h"
#include "common/thread_util.h"

namespace oij {

SplitJoinEngine::SplitJoinEngine(const QuerySpec& spec,
                                 const EngineOptions& options,
                                 ResultSink* sink)
    : ParallelEngineBase(spec, options, sink) {
  states_.reserve(options.num_joiners);
  partial_queues_.reserve(options.num_joiners);
  for (uint32_t j = 0; j < options.num_joiners; ++j) {
    states_.push_back(std::make_unique<JoinerState>());
    states_.back()->cache_probe =
        SampledCacheProbe(options.cache_sim, options.cache_sample_period);
    partial_queues_.push_back(
        std::make_unique<SpscQueue<Partial>>(options.queue_capacity));
  }
}

void SplitJoinEngine::Route(const Event& event) {
  // Broadcast: every joiner sees every tuple (the traffic cost the paper
  // attributes to SplitJoin). The storing joiner is derived from the
  // router sequence number, so no extra designation field is needed.
  for (uint32_t j = 0; j < num_joiners(); ++j) {
    EnqueueTo(j, event);
  }
}

Timestamp SplitJoinEngine::FinalizeThreshold(const JoinerState& s) const {
  // Highest event time with guaranteed-complete data; see KeyOijEngine.
  if (spec().emit_mode == EmitMode::kEager) {
    Timestamp t = s.max_seen;
    if (s.last_wm != kMinTimestamp && s.last_wm != kMaxTimestamp) {
      t = std::max(t, s.last_wm + spec().lateness_us);
    } else if (s.last_wm == kMaxTimestamp) {
      t = kMaxTimestamp;
    }
    return t;
  }
  if (s.last_wm == kMinTimestamp || s.last_wm == kMaxTimestamp) {
    return s.last_wm;
  }
  return s.last_wm - 1;
}

void SplitJoinEngine::OnTuple(uint32_t joiner, const Event& event) {
  JoinerState& s = *states_[joiner];
  ++s.processed;
  if (event.tuple.ts > s.max_seen) s.max_seen = event.tuple.ts;

  if (event.stream == StreamId::kProbe) {
    // Store step: exactly one joiner retains the tuple (round-robin by
    // router sequence keeps slices balanced without coordination).
    if (event.seq % num_joiners() == joiner) {
      s.slice[event.tuple.key].push_back(event.tuple);
      ++s.buffered;
      if (s.buffered > s.peak_buffered) s.peak_buffered = s.buffered;
    }
  } else {
    // Process step: every joiner probes its slice for every base tuple.
    if (event.tuple.ts + spec().window.fol <= FinalizeThreshold(s)) {
      ProcessBase(joiner, s, event.tuple, event.arrival_us, event.seq);
    } else {
      s.pending.push(PendingBase{event.tuple, event.arrival_us, event.seq});
    }
  }
  DrainPending(joiner, s);
}

void SplitJoinEngine::OnWatermark(uint32_t joiner, Timestamp watermark) {
  JoinerState& s = *states_[joiner];
  if (watermark > s.last_wm) s.last_wm = watermark;
  DrainPending(joiner, s);
  Evict(s);
}

void SplitJoinEngine::OnFlush(uint32_t joiner) {
  Partial done;
  done.kind = Partial::Kind::kDone;
  partial_queues_[joiner]->PushBounded(done, /*deadline_ns=*/-1,
                                       stop_token());
}

void SplitJoinEngine::DrainPending(uint32_t joiner, JoinerState& s) {
  const Timestamp threshold = FinalizeThreshold(s);
  while (!s.pending.empty() &&
         s.pending.top().tuple.ts + spec().window.fol <= threshold) {
    const PendingBase pb = s.pending.top();
    s.pending.pop();
    ProcessBase(joiner, s, pb.tuple, pb.arrival_us, pb.seq);
  }
}

void SplitJoinEngine::ProcessBase(uint32_t joiner, JoinerState& s,
                                  const Tuple& base, int64_t arrival_us,
                                  uint64_t seq) {
  const Timestamp start = spec().window.start_for(base.ts);
  const Timestamp end = spec().window.end_for(base.ts);

  AggState agg;
  uint64_t op_visited = 0;
  uint64_t op_matched = 0;
  static thread_local std::vector<const Tuple*> scratch;
  scratch.clear();
  {
    // Lookup: full scan of the local slice with the extra interval
    // predicate the paper adds to SplitJoin.
    ScopedTimerNs timer(&s.breakdown.lookup_ns);
    auto it = s.slice.find(base.key);
    if (it != s.slice.end()) {
      for (const Tuple& r : it->second) {
        ++op_visited;
        s.cache_probe.Touch(&r);
        if (r.ts >= start && r.ts <= end) {
          scratch.push_back(&r);
        }
      }
    }
  }
  {
    ScopedTimerNs timer(&s.breakdown.match_ns);
    for (const Tuple* r : scratch) agg.Add(r->payload);
    op_matched = scratch.size();
  }
  (void)op_matched;

  s.visited += op_visited;
  s.matched += agg.count;
  s.effectiveness_sum += op_visited == 0
                             ? 1.0
                             : static_cast<double>(agg.count) /
                                   static_cast<double>(op_visited);
  ++s.join_ops;

  Partial partial;
  partial.kind = Partial::Kind::kPartial;
  partial.base_seq = seq;
  partial.base = base;
  partial.arrival_us = arrival_us;
  partial.sum = agg.sum;
  partial.count = agg.count;
  partial.min = agg.min;
  partial.max = agg.max;
  partial.visited = op_visited;
  partial_queues_[joiner]->PushBounded(partial, /*deadline_ns=*/-1,
                                       stop_token());
}

void SplitJoinEngine::Evict(JoinerState& s) {
  if (s.last_wm == kMinTimestamp) return;
  const Timestamp bound =
      s.last_wm == kMaxTimestamp
          ? kMaxTimestamp
          : s.last_wm - spec().window.pre - spec().window.fol;
  for (auto& [key, buffer] : s.slice) {
    auto keep_end =
        std::remove_if(buffer.begin(), buffer.end(),
                       [bound](const Tuple& t) { return t.ts < bound; });
    const size_t removed = static_cast<size_t>(buffer.end() - keep_end);
    if (removed > 0) {
      buffer.erase(keep_end, buffer.end());
      s.evicted += removed;
      s.buffered -= removed;
    }
  }
}

void SplitJoinEngine::StartAuxiliary() {
  collector_ = std::thread([this] { CollectorMain(); });
}

void SplitJoinEngine::StopAuxiliary() {
  if (collector_.joinable()) collector_.join();
}

void SplitJoinEngine::CollectorMain() {
  SetCurrentThreadName("sj-collector");
  if (placement().active && placement().aux_cpu >= 0) {
    // The collector merges every joiner's partials; parking it on the
    // placement plan's auxiliary CPU keeps it off the joiners' cores.
    TryPinCurrentThreadTo(placement().aux_cpu);
  }
  uint32_t done_count = 0;
  Backoff backoff;
  Partial partial;
  // Every joiner pushes its done marker after its last partial (FIFO), so
  // once all markers are seen every mergeable slot has completed. On an
  // aborted run a marker may never come; the stop token ends the wait.
  while (done_count < num_joiners() && !stop_requested()) {
    bool any = false;
    for (uint32_t j = 0; j < num_joiners(); ++j) {
      while (partial_queues_[j]->TryPop(&partial)) {
        any = true;
        if (partial.kind == Partial::Kind::kDone) {
          ++done_count;
          continue;
        }
        MergeSlot& slot = merge_[partial.base_seq];
        if (slot.remaining == 0) {
          slot.remaining = num_joiners();
          slot.base = partial.base;
          slot.arrival_us = partial.arrival_us;
        }
        AggState piece;
        piece.sum = partial.sum;
        piece.count = partial.count;
        piece.min = partial.count == 0
                        ? std::numeric_limits<double>::infinity()
                        : partial.min;
        piece.max = partial.count == 0
                        ? -std::numeric_limits<double>::infinity()
                        : partial.max;
        slot.agg.Merge(piece);
        if (--slot.remaining == 0) {
          JoinResult result;
          result.base = slot.base;
          result.aggregate = slot.agg.Result(spec().agg);
          result.match_count = slot.agg.count;
          FillWindowStats(&result, slot.agg);
          result.arrival_us = slot.arrival_us;
          result.emit_us = MonotonicNowUs();
          collector_latency_.Record(result.emit_us - result.arrival_us);
          ++collector_results_;
          sink()->OnResult(result);
          merge_.erase(partial.base_seq);
        }
      }
    }
    if (!any) backoff.Pause();
  }
}

void SplitJoinEngine::CollectStats(EngineStats* stats) {
  stats->per_joiner_processed.resize(states_.size());
  for (size_t j = 0; j < states_.size(); ++j) {
    JoinerState& s = *states_[j];
    stats->per_joiner_processed[j] = s.processed;
    stats->visited += s.visited;
    stats->matched += s.matched;
    stats->effectiveness_sum += s.effectiveness_sum;
    stats->join_ops += s.join_ops;
    stats->breakdown.Merge(s.breakdown);
    stats->evicted_tuples += s.evicted;
    stats->peak_buffered_tuples += s.peak_buffered;
  }
  stats->results = collector_results_;
  stats->latency.Merge(collector_latency_);
}

}  // namespace oij
