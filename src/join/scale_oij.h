#ifndef OIJ_JOIN_SCALE_OIJ_H_
#define OIJ_JOIN_SCALE_OIJ_H_

#include <atomic>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "col/column_batch.h"
#include "col/sweep_merge.h"
#include "ebr/epoch_manager.h"
#include "join/engine.h"
#include "mem/node_arena.h"
#include "sched/load_stats.h"
#include "sched/partition_table.h"
#include "sched/rebalancer.h"
#include "skiplist/time_travel_index.h"
#include "window/incremental_window.h"
#include "window/two_stacks.h"

namespace oij {

/// Scale-OIJ — the paper's contribution (Section V), combining:
///
///  1. *SWMR time-travel index* (per joiner): a two-layer skip-list that
///     locates window boundaries in O(log) and visits only in-window
///     tuples, making lateness irrelevant to join cost (Fig 11).
///  2. *Dynamic balanced schedule*: keys hash into partitions; each
///     partition is owned by a virtual team of joiners that grows by
///     replication whenever the greedy rebalancer (Alg. 3) finds the load
///     skewed. Tuples of a shared partition round-robin across the team;
///     every member writes its own index and reads the whole team's
///     (Figs 13/14).
///  3. *Incremental window aggregation*: per (joiner, key) running
///     aggregates slide by Subtract-on-Evict, so overlapping windows share
///     work (Fig 16).
///
/// Cross-thread protocol. Each joiner publishes `progress` — the event
/// time through which it has durably processed its queue (its last
/// watermark punctuation in kWatermark mode; max observed timestamp in
/// kEager mode). A base tuple finalizes only once min(progress) over its
/// partition's team has passed its window end; the acquire-load of a
/// teammate's progress synchronizes with that teammate's release-store,
/// so every insert the teammate performed earlier is visible to the scan.
/// Teams only grow and joiners refresh their schedule snapshot at least
/// once per punctuation, so a finalizing joiner's team view always covers
/// every member that may hold in-window tuples.
///
/// Eviction. Each joiner additionally publishes a monotone `read_floor`:
/// a lower bound on every index timestamp it may still scan, derived from
/// min(last watermark, oldest pending base) minus the window reach plus
/// one extra window for incremental subtract-scans (which, by the overlap
/// precondition, reach at most one window below their next window start).
/// Owners unlink index prefixes strictly below min(read_floor) over all
/// joiners; unlinked nodes are freed via EBR once every reader epoch
/// drains, so scans already in flight stay memory-safe.
class ScaleOijEngine : public ParallelEngineBase {
 public:
  ScaleOijEngine(const QuerySpec& spec, const EngineOptions& options,
                 ResultSink* sink);

  std::string_view name() const override { return "scale-oij"; }

 protected:
  void Route(const Event& event) override;
  void OnTuple(uint32_t joiner, const Event& event) override;
  void OnWatermark(uint32_t joiner, Timestamp watermark) override;
  void OnIdle(uint32_t joiner) override;
  void OnFlush(uint32_t joiner) override;
  bool SupportsMultiQuery() const override { return true; }
  void OnAddQuery(uint32_t joiner, QueryRuntime& query) override;
  void CollectStats(EngineStats* stats) override;
  void SampleMem(WatchdogSample* sample) const override;
  bool CollectSnapshotState(uint32_t joiner,
                            std::vector<StreamEvent>* out) override;

 private:
  struct PendingBase {
    Tuple tuple;
    int64_t arrival_us;

    bool operator>(const PendingBase& other) const {
      return tuple.ts > other.tuple.ts;
    }
  };

  /// Per-(joiner, query) runtime state, indexed by query ordinal. Every
  /// standing query keeps its own pending bases (its window end gates
  /// finalization) and its own incremental window states, but all of
  /// them read the one shared time-travel index.
  struct QuerySlot {
    std::priority_queue<PendingBase, std::vector<PendingBase>,
                        std::greater<PendingBase>>
        pending;
    /// Per-key running windows: Subtract-on-Evict for invertible
    /// aggregates, Two-Stacks for non-invertible ones (min/max).
    std::unordered_map<Key, IncrementalWindowState> inc_states;
    std::unordered_map<Key, NonInvertibleWindowState> ni_states;
  };

  struct JoinerState {
    JoinerState(EpochManager* ebr, uint32_t slot, uint64_t seed,
                NodeArena* arena)
        : ebr_slot(slot),
          index(ebr, slot, seed, arena),
          annex(ebr, slot, seed ^ 0xa22e7ULL, /*arena=*/nullptr),
          stage(arena),
          probes(arena) {
      slots.resize(1);  // ordinal 0: the primary query
    }

    uint32_t ebr_slot;
    TimeTravelIndex index;
    /// Annex index for lateness-violating probes (multi-query mode with
    /// at least one best-effort query). Only best-effort queries scan
    /// it, so drop/side-channel queries keep exact, late-free windows
    /// over the main index. Heap-allocated (no arena): the late path is
    /// rare by construction.
    TimeTravelIndex annex;
    std::vector<QuerySlot> slots;  ///< indexed by query ordinal
    std::shared_ptr<const Schedule> schedule;  // joiner-local snapshot

    /// Columnar batch kernel scratch (src/col/, reused across drains).
    /// With pooled_alloc the columns stage on slabs loaned from this
    /// joiner's own arena, so evicted index slabs recycle straight into
    /// batch staging.
    col::ColumnarBatchStage stage;
    col::ProbeColumns probes;
    std::vector<col::BaseSlice> slices;
    std::vector<Timestamp> group_ts;
    std::vector<double> prefix;
    uint64_t columnar_bases = 0;
    uint64_t columnar_groups = 0;
    uint64_t columnar_fallbacks = 0;

    /// Max window reach over every query this joiner has ever been told
    /// about (monotone — removed queries keep contributing, so already
    /// pending windows stay scannable).
    Timestamp reach = 0;

    /// Published processing progress (event time); see class comment.
    alignas(64) std::atomic<Timestamp> progress{kMinTimestamp};

    /// Published lower bound on every index timestamp this joiner may
    /// still scan: min(last watermark, oldest pending base) − PRE −
    /// (PRE+FOL) − 1 (window reach plus incremental subtract reach).
    /// Owners evict strictly below min(read_floor) over all joiners.
    alignas(64) std::atomic<Timestamp> read_floor{kMinTimestamp};

    Timestamp max_seen = kMinTimestamp;
    Timestamp last_wm = kMinTimestamp;

    uint64_t processed = 0;
    uint64_t evicted = 0;
    uint64_t peak_buffered = 0;
    uint64_t visited = 0;
    uint64_t matched = 0;
    double effectiveness_sum = 0.0;
    uint64_t join_ops = 0;
    uint64_t incremental_slides = 0;
    uint64_t recomputes = 0;
    TimeBreakdown breakdown;
    LatencyRecorder latency;
    SampledCacheProbe cache_probe;
  };

  Timestamp LocalProgress(const JoinerState& s) const;
  void PublishProgress(JoinerState& s);
  void PublishReadFloor(JoinerState& s);

  /// Smallest published progress over `team`.
  Timestamp TeamMinProgress(const std::vector<uint32_t>& team) const;
  /// Smallest published read floor over all joiners (eviction bound).
  Timestamp GlobalMinReadFloor() const;

  void DrainPending(uint32_t joiner, JoinerState& s);
  void JoinOne(uint32_t joiner, JoinerState& s, QueryRuntime& query,
               QuerySlot& slot, const Tuple& base, int64_t arrival_us);
  /// Columnar path: joins one key-group of the staged run (positions
  /// [begin, end) of the sorted stage) with one gather from the team's
  /// indexes + one sweep, instead of one index descent per base. Keeps
  /// the per-key incremental window states consistent (Reseed /
  /// Invalidate) so interleaved scalar slides stay eviction-safe.
  void JoinGroupColumnar(uint32_t joiner, JoinerState& s,
                         QueryRuntime& query, QuerySlot& slot, Key key,
                         size_t begin, size_t end);
  /// Shared result-emission tail of both join paths.
  void EmitOne(JoinerState& s, QueryRuntime& query, const Tuple& base,
               int64_t arrival_us, double value, uint64_t count,
               double out_sum, double out_min, double out_max);
  void Evict(JoinerState& s);
  bool HavePending(const JoinerState& s) const;

  /// Joiner-owned slab arenas (pooled_alloc; empty otherwise). Declared
  /// before ebr_ and states_: destruction runs states_ (frees live nodes
  /// into the arenas), then ebr_ (drains retired runs into them), then the
  /// arenas themselves — matching NodeArena's lifetime contract.
  std::vector<std::unique_ptr<NodeArena>> arenas_;
  EpochManager ebr_;
  PartitionTable table_;
  LoadStats router_stats_;
  Rebalancer rebalancer_;

  // Router-thread-local routing state.
  std::shared_ptr<const Schedule> router_schedule_;
  std::vector<uint32_t> round_robin_;
  uint64_t events_since_rebalance_ = 0;
  uint64_t rebalances_ = 0;

  /// True when placement resolved more than one node: the rebalancer
  /// runs socket-aware and the cross counters are live.
  bool numa_topo_ = false;

  /// Cross-socket scheduler activity (driver thread writes, admin
  /// threads read — single-writer relaxed atomics): partition replicas
  /// the rebalancer placed on a remote node, and round-robin dispatches
  /// that left the team leader's node.
  std::atomic<uint64_t> numa_cross_replications_{0};
  std::atomic<uint64_t> numa_cross_dispatches_{0};

  std::vector<std::unique_ptr<JoinerState>> states_;

  /// Set (never cleared) once any joiner stored a late probe in its
  /// annex. From then on best-effort queries abandon their incremental
  /// window states and full-scan main + annex — drop/side-channel
  /// queries are unaffected either way.
  std::atomic<bool> annex_dirty_{false};
};

}  // namespace oij

#endif  // OIJ_JOIN_SCALE_OIJ_H_
