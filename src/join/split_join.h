#ifndef OIJ_JOIN_SPLIT_JOIN_H_
#define OIJ_JOIN_SPLIT_JOIN_H_

#include <memory>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "join/engine.h"

namespace oij {

/// SplitJoin (Najafi et al., USENIX ATC'16) adapted to OIJ semantics — the
/// paper's third comparison point (Section V-D): "we follow their
/// distribution and collection framework for parallelism, and add an extra
/// predicate to filter out the tuples outside the relative window".
///
/// Top-down data flow: every tuple is *broadcast* to all joiners. Exactly
/// one joiner (round-robin by sequence) *stores* each probe tuple, so the
/// probe state is sliced evenly; every joiner *processes* every base tuple
/// against its local slice and forwards a partial aggregate to a collector
/// thread, which merges the J partials per base tuple and emits.
///
/// This reproduces both of SplitJoin's documented properties: inherent
/// balance (round-robin storage) and the costs the paper highlights —
/// J-way broadcast traffic, all-joiners-process-all-base-tuples, full
/// unsorted scans, and merge overhead.
class SplitJoinEngine : public ParallelEngineBase {
 public:
  SplitJoinEngine(const QuerySpec& spec, const EngineOptions& options,
                  ResultSink* sink);

  std::string_view name() const override { return "split-join"; }

 protected:
  void Route(const Event& event) override;
  void OnTuple(uint32_t joiner, const Event& event) override;
  void OnWatermark(uint32_t joiner, Timestamp watermark) override;
  void OnFlush(uint32_t joiner) override;
  void StartAuxiliary() override;
  void StopAuxiliary() override;
  void CollectStats(EngineStats* stats) override;

 private:
  /// Partial aggregate from one joiner for one base tuple.
  struct Partial {
    enum class Kind : uint8_t { kPartial = 0, kDone };
    Kind kind = Kind::kPartial;
    uint64_t base_seq = 0;
    Tuple base;
    int64_t arrival_us = 0;
    double sum = 0.0;
    uint64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    uint64_t visited = 0;
  };

  struct PendingBase {
    Tuple tuple;
    int64_t arrival_us;
    uint64_t seq;

    bool operator>(const PendingBase& other) const {
      return tuple.ts > other.tuple.ts;
    }
  };

  struct JoinerState {
    std::unordered_map<Key, std::vector<Tuple>> slice;
    std::priority_queue<PendingBase, std::vector<PendingBase>,
                        std::greater<PendingBase>>
        pending;
    Timestamp max_seen = kMinTimestamp;
    Timestamp last_wm = kMinTimestamp;

    uint64_t processed = 0;
    uint64_t buffered = 0;
    uint64_t peak_buffered = 0;
    uint64_t evicted = 0;
    uint64_t visited = 0;
    uint64_t matched = 0;
    double effectiveness_sum = 0.0;
    uint64_t join_ops = 0;
    TimeBreakdown breakdown;
    SampledCacheProbe cache_probe;
  };

  Timestamp FinalizeThreshold(const JoinerState& s) const;
  void DrainPending(uint32_t joiner, JoinerState& s);
  void ProcessBase(uint32_t joiner, JoinerState& s, const Tuple& base,
                   int64_t arrival_us, uint64_t seq);
  void Evict(JoinerState& s);

  void CollectorMain();

  std::vector<std::unique_ptr<JoinerState>> states_;
  std::vector<std::unique_ptr<SpscQueue<Partial>>> partial_queues_;
  std::thread collector_;

  // Collector-owned.
  struct MergeSlot {
    AggState agg;
    uint32_t remaining = 0;
    Tuple base;
    int64_t arrival_us = 0;
  };
  std::unordered_map<uint64_t, MergeSlot> merge_;
  LatencyRecorder collector_latency_;
  uint64_t collector_results_ = 0;
};

}  // namespace oij

#endif  // OIJ_JOIN_SPLIT_JOIN_H_
