#include "join/reference_join.h"

#include <algorithm>
#include <unordered_map>

#include "join/watermark.h"

namespace oij {

std::vector<ReferenceResult> ReferenceJoin(
    const std::vector<StreamEvent>& events, const QuerySpec& spec) {
  std::unordered_map<Key, std::vector<Tuple>> probes;
  std::vector<Tuple> bases;
  for (const StreamEvent& ev : events) {
    if (ev.stream == StreamId::kProbe) {
      probes[ev.tuple.key].push_back(ev.tuple);
    } else {
      bases.push_back(ev.tuple);
    }
  }
  for (auto& [key, vec] : probes) {
    std::sort(vec.begin(), vec.end(),
              [](const Tuple& a, const Tuple& b) { return a.ts < b.ts; });
  }

  std::vector<ReferenceResult> out;
  out.reserve(bases.size());
  for (const Tuple& s : bases) {
    const Timestamp start = spec.window.start_for(s.ts);
    const Timestamp end = spec.window.end_for(s.ts);
    AggState agg;
    auto it = probes.find(s.key);
    if (it != probes.end()) {
      const auto& vec = it->second;
      auto lo = std::lower_bound(
          vec.begin(), vec.end(), start,
          [](const Tuple& t, Timestamp v) { return t.ts < v; });
      for (; lo != vec.end() && lo->ts <= end; ++lo) {
        agg.Add(lo->payload);
      }
    }
    out.push_back({s, agg.Result(spec.agg), agg.count});
  }
  return out;
}

std::vector<ReferenceResult> ReferenceJoinBrute(
    const std::vector<StreamEvent>& events, const QuerySpec& spec) {
  std::vector<ReferenceResult> out;
  for (const StreamEvent& se : events) {
    if (se.stream != StreamId::kBase) continue;
    const Tuple& s = se.tuple;
    const Timestamp start = spec.window.start_for(s.ts);
    const Timestamp end = spec.window.end_for(s.ts);
    AggState agg;
    for (const StreamEvent& re : events) {
      if (re.stream != StreamId::kProbe) continue;
      const Tuple& r = re.tuple;
      if (r.key == s.key && r.ts >= start && r.ts <= end) {
        agg.Add(r.payload);
      }
    }
    out.push_back({s, agg.Result(spec.agg), agg.count});
  }
  return out;
}

std::vector<ReferenceResult> ReferenceJoinWithPolicy(
    const std::vector<StreamEvent>& events, const QuerySpec& spec,
    uint64_t wm_every, ReferenceRunStats* stats, LateSink* late_sink) {
  WatermarkTracker tracker(spec.lateness_us);
  LatenessGate gate;
  gate.Configure(spec.late_policy, late_sink);
  ReferenceRunStats local;

  std::vector<StreamEvent> kept;
  kept.reserve(events.size());
  uint64_t count = 0;
  for (const StreamEvent& ev : events) {
    // Mirror the driver loop: a tuple is admitted against the watermark
    // in force when it is *pushed*; punctuation follows the push.
    const bool admit = gate.Admit(ev);
    tracker.Observe(ev.tuple.ts);
    if (admit) kept.push_back(ev);
    if (wm_every > 0 && (++count % wm_every) == 0) {
      gate.ObserveWatermark(tracker.watermark());
      ++local.watermarks_emitted;
    }
  }

  local.late = gate.stats();
  if (stats != nullptr) *stats = local;
  return ReferenceJoin(kept, spec);
}

void SortResults(std::vector<ReferenceResult>* results) {
  std::sort(results->begin(), results->end(),
            [](const ReferenceResult& a, const ReferenceResult& b) {
              if (a.base.ts != b.base.ts) return a.base.ts < b.base.ts;
              if (a.base.key != b.base.key) return a.base.key < b.base.key;
              return a.base.payload < b.base.payload;
            });
}

}  // namespace oij
