#include "join/reference_join.h"

#include <algorithm>
#include <unordered_map>

namespace oij {

std::vector<ReferenceResult> ReferenceJoin(
    const std::vector<StreamEvent>& events, const QuerySpec& spec) {
  std::unordered_map<Key, std::vector<Tuple>> probes;
  std::vector<Tuple> bases;
  for (const StreamEvent& ev : events) {
    if (ev.stream == StreamId::kProbe) {
      probes[ev.tuple.key].push_back(ev.tuple);
    } else {
      bases.push_back(ev.tuple);
    }
  }
  for (auto& [key, vec] : probes) {
    std::sort(vec.begin(), vec.end(),
              [](const Tuple& a, const Tuple& b) { return a.ts < b.ts; });
  }

  std::vector<ReferenceResult> out;
  out.reserve(bases.size());
  for (const Tuple& s : bases) {
    const Timestamp start = spec.window.start_for(s.ts);
    const Timestamp end = spec.window.end_for(s.ts);
    AggState agg;
    auto it = probes.find(s.key);
    if (it != probes.end()) {
      const auto& vec = it->second;
      auto lo = std::lower_bound(
          vec.begin(), vec.end(), start,
          [](const Tuple& t, Timestamp v) { return t.ts < v; });
      for (; lo != vec.end() && lo->ts <= end; ++lo) {
        agg.Add(lo->payload);
      }
    }
    out.push_back({s, agg.Result(spec.agg), agg.count});
  }
  return out;
}

std::vector<ReferenceResult> ReferenceJoinBrute(
    const std::vector<StreamEvent>& events, const QuerySpec& spec) {
  std::vector<ReferenceResult> out;
  for (const StreamEvent& se : events) {
    if (se.stream != StreamId::kBase) continue;
    const Tuple& s = se.tuple;
    const Timestamp start = spec.window.start_for(s.ts);
    const Timestamp end = spec.window.end_for(s.ts);
    AggState agg;
    for (const StreamEvent& re : events) {
      if (re.stream != StreamId::kProbe) continue;
      const Tuple& r = re.tuple;
      if (r.key == s.key && r.ts >= start && r.ts <= end) {
        agg.Add(r.payload);
      }
    }
    out.push_back({s, agg.Result(spec.agg), agg.count});
  }
  return out;
}

void SortResults(std::vector<ReferenceResult>* results) {
  std::sort(results->begin(), results->end(),
            [](const ReferenceResult& a, const ReferenceResult& b) {
              if (a.base.ts != b.base.ts) return a.base.ts < b.base.ts;
              if (a.base.key != b.base.key) return a.base.key < b.base.key;
              return a.base.payload < b.base.payload;
            });
}

}  // namespace oij
