#!/usr/bin/env bash
# Collects the machine-readable `BENCHJSON {...}` lines that bench
# binaries print alongside their human-readable tables into one JSON
# document, seeding the per-PR perf trajectory (BENCH_<nnn>.json at the
# repo root; see EXPERIMENTS.md).
#
# Usage:
#   build/bench/bench_batch_kernel | tools/bench_to_json.sh BENCH_009.json
#   tools/bench_to_json.sh out.json < saved_bench_output.txt
#
# Lines not starting with BENCHJSON pass through to stderr untouched, so
# piping a bench through this keeps its table visible.
set -euo pipefail

OUT="${1:-/dev/stdout}"

records="$(tee >(grep -v '^BENCHJSON ' >&2 || true) \
           | sed -n 's/^BENCHJSON //p')"

count=0
if [ -n "$records" ]; then
  count="$(printf '%s\n' "$records" | wc -l | tr -d ' ')"
fi

{
  printf '{\n'
  printf '  "generated_by": "tools/bench_to_json.sh",\n'
  printf '  "bench_scale": %s,\n' "${OIJ_BENCH_SCALE:-1.0}"
  printf '  "record_count": %s,\n' "$count"
  printf '  "records": [\n'
  if [ -n "$records" ]; then
    # Indent each record and comma-join all but the last.
    printf '%s\n' "$records" | sed 's/^/    /' | sed '$!s/$/,/'
  fi
  printf '  ]\n'
  printf '}\n'
} > "$OUT"

if [ "$count" -eq 0 ]; then
  echo "bench_to_json: no BENCHJSON lines found in input" >&2
  exit 1
fi
