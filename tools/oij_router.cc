// Cluster ingress tier: health-gated consistent-hash router over N
// oij_server backends (src/cluster/router.h).
//
//   oij_router --backends <spec>[,<spec>...] [flags]
//     --backends <list>          comma-separated backends, each
//                                host:data_port:admin_port (host may be
//                                omitted: data_port:admin_port binds to
//                                127.0.0.1)
//     --port <n>                 client data port (default 0 = ephemeral)
//     --admin-port <n>           admin HTTP port (default 0 = ephemeral)
//     --bind <addr>              bind address (default 127.0.0.1)
//     --vnodes <n>               virtual nodes per backend (default 64)
//     --health-interval-ms <n>   gap between /healthz probes (default 200)
//     --health-timeout-ms <n>    per-probe bound (default 500)
//     --unhealthy-threshold <n>  consecutive failures before ejection
//     --healthy-threshold <n>    consecutive passes before re-admission
//     --connect-timeout-ms <n>   backend connect+handshake bound
//     --backoff-base-ms <n>      reconnect backoff base (default 50)
//     --backoff-max-ms <n>       reconnect backoff cap (default 2000)
//     --stall-timeout-ms <n>     slow-loris client eviction (default 30000)
//     --finish-timeout-ms <n>    finish barrier bound (default 30000)
//     --replay-max-mb <n>        per-backend replay buffer (default 256)
//     --seed <n>                 backoff jitter seed (default 1)
//
// Clients speak the same wire protocol as against a single oij_server;
// the router partitions tuples over the backends by key on a consistent
// -hash ring, fans subscribed results back, and emits the min-of-
// backends cluster watermark. Backends running --fsync per_batch
// --recover-to-watermark survive kill -9 without losing or duplicating
// a single routed tuple (see DESIGN.md §5f).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "cluster/router.h"
#include "server/signal_stop.h"

namespace {

using namespace oij;

int Usage() {
  std::fprintf(
      stderr,
      "usage: oij_router --backends host:data:admin[,host:data:admin...]\n"
      "                  [--port <n>] [--admin-port <n>] [--bind <addr>]\n"
      "                  [--vnodes <n>] [--health-interval-ms <n>]\n"
      "                  [--health-timeout-ms <n>]\n"
      "                  [--unhealthy-threshold <n>]\n"
      "                  [--healthy-threshold <n>]\n"
      "                  [--connect-timeout-ms <n>] [--backoff-base-ms <n>]\n"
      "                  [--backoff-max-ms <n>] [--stall-timeout-ms <n>]\n"
      "                  [--finish-timeout-ms <n>] [--replay-max-mb <n>]\n"
      "                  [--seed <n>]\n");
  return 2;
}

bool ParsePort(const std::string& arg, uint16_t* out) {
  char* end = nullptr;
  const long v = std::strtol(arg.c_str(), &end, 10);
  if (end == arg.c_str() || *end != '\0' || v < 0 || v > 65535) return false;
  *out = static_cast<uint16_t>(v);
  return true;
}

/// "host:data:admin" or "data:admin" (host defaults to 127.0.0.1).
bool ParseBackendSpec(const std::string& spec, RouterBackendAddress* out) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t colon = spec.find(':', start);
    if (colon == std::string::npos) {
      parts.push_back(spec.substr(start));
      break;
    }
    parts.push_back(spec.substr(start, colon - start));
    start = colon + 1;
  }
  if (parts.size() == 2) {
    out->host = "127.0.0.1";
    return ParsePort(parts[0], &out->data_port) &&
           ParsePort(parts[1], &out->admin_port) && out->data_port != 0 &&
           out->admin_port != 0;
  }
  if (parts.size() == 3) {
    if (parts[0].empty()) return false;
    out->host = parts[0];
    return ParsePort(parts[1], &out->data_port) &&
           ParsePort(parts[2], &out->admin_port) && out->data_port != 0 &&
           out->admin_port != 0;
  }
  return false;
}

bool ParseBackendList(const std::string& list,
                      std::vector<RouterBackendAddress>* out) {
  size_t start = 0;
  while (start <= list.size()) {
    const size_t comma = list.find(',', start);
    const std::string spec =
        comma == std::string::npos ? list.substr(start)
                                   : list.substr(start, comma - start);
    RouterBackendAddress addr;
    if (!ParseBackendSpec(spec, &addr)) return false;
    out->push_back(addr);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return !out->empty();
}

}  // namespace

int main(int argc, char** argv) {
  RouterConfig config;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto positive = [&](int64_t* out) {
      const char* v = value();
      if (v == nullptr || std::atoll(v) <= 0) return false;
      *out = std::atoll(v);
      return true;
    };
    if (flag == "--backends") {
      const char* v = value();
      if (v == nullptr || !ParseBackendList(v, &config.backends)) {
        std::fprintf(stderr, "bad --backends list\n");
        return Usage();
      }
    } else if (flag == "--port") {
      const char* v = value();
      if (v == nullptr || !ParsePort(v, &config.data_port)) return Usage();
    } else if (flag == "--admin-port") {
      const char* v = value();
      if (v == nullptr || !ParsePort(v, &config.admin_port)) return Usage();
    } else if (flag == "--bind") {
      const char* v = value();
      if (v == nullptr) return Usage();
      config.bind_address = v;
    } else if (flag == "--vnodes") {
      const char* v = value();
      if (v == nullptr || std::atoi(v) <= 0) return Usage();
      config.ring_vnodes = static_cast<uint32_t>(std::atoi(v));
    } else if (flag == "--health-interval-ms") {
      if (!positive(&config.health.interval_ms)) return Usage();
    } else if (flag == "--health-timeout-ms") {
      if (!positive(&config.health.timeout_ms)) return Usage();
    } else if (flag == "--unhealthy-threshold") {
      const char* v = value();
      if (v == nullptr || std::atoi(v) <= 0) return Usage();
      config.health.unhealthy_threshold =
          static_cast<uint32_t>(std::atoi(v));
    } else if (flag == "--healthy-threshold") {
      const char* v = value();
      if (v == nullptr || std::atoi(v) <= 0) return Usage();
      config.health.healthy_threshold = static_cast<uint32_t>(std::atoi(v));
    } else if (flag == "--connect-timeout-ms") {
      if (!positive(&config.connect_timeout_ms)) return Usage();
    } else if (flag == "--backoff-base-ms") {
      if (!positive(&config.backoff_base_ms)) return Usage();
    } else if (flag == "--backoff-max-ms") {
      if (!positive(&config.backoff_max_ms)) return Usage();
    } else if (flag == "--stall-timeout-ms") {
      if (!positive(&config.client_stall_timeout_ms)) return Usage();
    } else if (flag == "--finish-timeout-ms") {
      if (!positive(&config.finish_timeout_ms)) return Usage();
    } else if (flag == "--replay-max-mb") {
      int64_t mb = 0;
      if (!positive(&mb)) return Usage();
      config.replay_max_bytes = static_cast<size_t>(mb) << 20;
    } else if (flag == "--seed") {
      const char* v = value();
      if (v == nullptr) return Usage();
      config.seed = static_cast<uint64_t>(std::atoll(v));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return Usage();
    }
  }
  if (config.backends.empty()) {
    std::fprintf(stderr, "--backends is required\n");
    return Usage();
  }

  OijRouter router(config);
  const std::atomic<bool>* stop = InstallStopSignalHandlers();
  const Status s = router.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "router start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("oij_router: %zu backend(s), %u vnodes each\n",
              config.backends.size(), config.ring_vnodes);
  std::printf("data port:  %u\n", router.data_port());
  std::printf("admin port: %u  (GET /metrics /healthz /statz)\n",
              router.admin_port());
  std::fflush(stdout);

  while (!stop->load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "signal received; shutting down\n");
  router.Shutdown();

  const RouterCounters c = router.CountersSnapshot();
  std::printf("routed %llu/%llu tuples (%llu failed over, %llu dropped), "
              "%llu watermarks, %llu results fanned\n",
              static_cast<unsigned long long>(c.tuples_routed),
              static_cast<unsigned long long>(c.tuples_in),
              static_cast<unsigned long long>(c.tuples_failed_over),
              static_cast<unsigned long long>(c.tuples_dropped),
              static_cast<unsigned long long>(c.watermarks_broadcast),
              static_cast<unsigned long long>(c.results_fanned));
  return 0;
}
