// Command-line front end for the library's operational tasks:
//
//   oij_cli run <workload.conf|preset> <engine> [joiners] [tuples]
//       Run a workload (a WorkloadSpecToConfig file or a preset name)
//       through an engine and print the run summary. Durability flags
//       (anywhere after `run`): --wal-dir <dir> logs the run to a
//       per-joiner WAL, --fsync <none|interval|per_batch> picks the
//       group-commit policy, --snapshot-every <n> snapshots the index
//       every n records, --recover replays the WAL before ingesting.
//       --numa <auto|off> controls NUMA placement (auto = pin joiner
//       teams per socket when >1 node is detected).
//   oij_cli config <preset>
//       Print a preset as an editable workload config file.
//   oij_cli trace-gen <workload.conf|preset> <out.trace[.csv]>
//       Materialize a workload's arrival sequence to a trace file
//       (binary, or CSV when the path ends in .csv).
//   oij_cli trace-info <trace[.csv]>
//       Inspect a trace: counts, event-time span, key cardinality,
//       measured disorder (= minimum exact lateness).
//   oij_cli trace-convert <in> <out>
//       Convert between binary and CSV traces (by file extension).
//   oij_cli trace-run <trace[.csv]> <engine> [joiners]
//       Replay a trace through an engine with the measured disorder as
//       lateness.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>

#include "core/engine_factory.h"
#include "core/pipeline.h"
#include "core/run_summary.h"
#include "server/signal_stop.h"
#include "stream/presets.h"
#include "stream/trace.h"

namespace {

using namespace oij;

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

/// Resolves a workload argument: preset name first, then a config file.
bool LoadWorkload(const std::string& arg, WorkloadSpec* out) {
  if (FindPreset(arg, out)) return true;
  const std::string text = ReadFileOrEmpty(arg);
  if (text.empty()) {
    std::fprintf(stderr, "no such preset or config file: %s\n",
                 arg.c_str());
    return false;
  }
  const Status s = WorkloadSpecFromConfig(text, out);
  if (!s.ok()) {
    std::fprintf(stderr, "bad config %s: %s\n", arg.c_str(),
                 s.ToString().c_str());
    return false;
  }
  return true;
}

Status LoadTrace(const std::string& path, std::vector<StreamEvent>* out) {
  return EndsWith(path, ".csv") ? ReadTraceCsv(path, out)
                                : ReadTrace(path, out);
}

Status StoreTrace(const std::string& path,
                  const std::vector<StreamEvent>& events) {
  return EndsWith(path, ".csv") ? WriteTraceCsv(path, events)
                                : WriteTrace(path, events);
}

std::vector<StreamEvent> Materialize(const WorkloadSpec& spec) {
  WorkloadGenerator gen(spec);
  std::vector<StreamEvent> events;
  StreamEvent ev;
  while (gen.Next(&ev)) events.push_back(ev);
  return events;
}

int CmdRun(int argc, char** argv) {
  // Peel the durability flags off wherever they appear; the rest stay
  // positional.
  EngineOptions options;
  bool recover = false;
  std::vector<char*> pos;
  for (int i = 0; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--wal-dir") {
      const char* v = value();
      if (v == nullptr || *v == '\0') return 2;
      options.durability.wal_dir = v;
    } else if (flag == "--fsync") {
      const char* v = value();
      if (v == nullptr) return 2;
      const Status fs = FsyncPolicyFromName(v, &options.durability.fsync);
      if (!fs.ok()) {
        std::fprintf(stderr, "%s\n", fs.ToString().c_str());
        return 2;
      }
    } else if (flag == "--snapshot-every") {
      const char* v = value();
      if (v == nullptr || std::atoll(v) < 0) return 2;
      options.durability.snapshot_interval_records =
          static_cast<uint64_t>(std::atoll(v));
    } else if (flag == "--recover") {
      recover = true;
    } else if (flag == "--numa") {
      const char* v = value();
      if (v == nullptr) return 2;
      const Status ns = NumaModeFromName(v, &options.numa.mode);
      if (!ns.ok()) {
        std::fprintf(stderr, "%s\n", ns.ToString().c_str());
        return 2;
      }
    } else {
      pos.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(pos.size());
  argv = pos.data();
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: oij_cli run <workload> <engine> [joiners] "
                 "[tuples] [batch] [--wal-dir <dir>] [--fsync <policy>] "
                 "[--snapshot-every <n>] [--recover] [--numa <auto|off>]\n");
    return 2;
  }
  WorkloadSpec workload;
  if (!LoadWorkload(argv[0], &workload)) return 1;
  EngineKind kind;
  Status s = EngineKindFromName(argv[1], &kind);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  options.num_joiners = argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2]))
                                 : 4;
  if (argc > 3) {
    workload.total_tuples = static_cast<uint64_t>(std::atoll(argv[3]));
  }
  if (argc > 4) {
    // Router->joiner transport batch size; 1 = per-tuple transport.
    options.batch_size = static_cast<uint32_t>(std::atoi(argv[4]));
  }
  QuerySpec query;
  query.window = workload.window;
  query.lateness_us = workload.lateness_us;

  NullSink sink;
  auto engine = CreateEngine(kind, query, options, &sink);
  WorkloadGenerator gen(workload);
  PipelineConfig config;
  // SIGINT/SIGTERM stop the source and drain normally, so an interrupted
  // run still prints a consistent summary (and, with --wal-dir, a fully
  // synced log).
  config.stop = InstallStopSignalHandlers();
  config.recover = recover;
  const RunResult run = RunPipeline(engine.get(), &gen, config);
  if (config.stop->load(std::memory_order_relaxed)) {
    std::fprintf(stderr, "interrupted: drained after %llu tuples\n",
                 static_cast<unsigned long long>(run.tuples));
  }
  std::printf("%s", SummarizeRun(argv[1], run).c_str());
  return 0;
}

int CmdConfig(int argc, char** argv) {
  if (argc < 1) {
    std::fprintf(stderr, "usage: oij_cli config <preset>\n");
    return 2;
  }
  WorkloadSpec workload;
  if (!FindPreset(argv[0], &workload)) {
    std::fprintf(stderr, "unknown preset: %s\n", argv[0]);
    return 1;
  }
  std::printf("%s", WorkloadSpecToConfig(workload).c_str());
  return 0;
}

int CmdTraceGen(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: oij_cli trace-gen <workload> <out>\n");
    return 2;
  }
  WorkloadSpec workload;
  if (!LoadWorkload(argv[0], &workload)) return 1;
  const auto events = Materialize(workload);
  const Status s = StoreTrace(argv[1], events);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu arrivals to %s\n", events.size(), argv[1]);
  return 0;
}

int CmdTraceInfo(int argc, char** argv) {
  if (argc < 1) {
    std::fprintf(stderr, "usage: oij_cli trace-info <trace>\n");
    return 2;
  }
  std::vector<StreamEvent> events;
  const Status s = LoadTrace(argv[0], &events);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  uint64_t bases = 0;
  Timestamp min_ts = kMaxTimestamp, max_ts = kMinTimestamp;
  std::set<Key> keys;
  for (const auto& e : events) {
    if (e.stream == StreamId::kBase) ++bases;
    min_ts = std::min(min_ts, e.tuple.ts);
    max_ts = std::max(max_ts, e.tuple.ts);
    keys.insert(e.tuple.key);
  }
  std::printf("arrivals:        %zu (%llu base / %zu probe)\n",
              events.size(), static_cast<unsigned long long>(bases),
              events.size() - bases);
  std::printf("event-time span: %s\n",
              events.empty()
                  ? "n/a"
                  : HumanDurationUs(static_cast<double>(max_ts - min_ts))
                        .c_str());
  std::printf("distinct keys:   %zu\n", keys.size());
  std::printf("disorder:        %lld us (minimum exact lateness)\n",
              static_cast<long long>(MeasureDisorder(events)));
  return 0;
}

int CmdTraceConvert(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: oij_cli trace-convert <in> <out>\n");
    return 2;
  }
  std::vector<StreamEvent> events;
  Status s = LoadTrace(argv[0], &events);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  s = StoreTrace(argv[1], events);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("converted %zu arrivals: %s -> %s\n", events.size(),
              argv[0], argv[1]);
  return 0;
}

int CmdTraceRun(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: oij_cli trace-run <trace> <engine> [joiners]\n");
    return 2;
  }
  std::vector<StreamEvent> events;
  Status s = LoadTrace(argv[0], &events);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  EngineKind kind;
  s = EngineKindFromName(argv[1], &kind);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  const Timestamp disorder = MeasureDisorder(events);
  QuerySpec query;
  query.window = IntervalWindow{1'000'000, 0};  // 1 s window default
  query.lateness_us = disorder;
  EngineOptions options;
  options.num_joiners = argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2]))
                                 : 4;
  NullSink sink;
  auto engine = CreateEngine(kind, query, options, &sink);
  TraceSource source(std::move(events), disorder);
  PipelineConfig config;
  config.stop = InstallStopSignalHandlers();
  const RunResult run =
      RunPipelineFrom(engine.get(), &source, /*pace=*/0, config);
  if (config.stop->load(std::memory_order_relaxed)) {
    std::fprintf(stderr, "interrupted: drained after %llu tuples\n",
                 static_cast<unsigned long long>(run.tuples));
  }
  std::printf("%s", SummarizeRun(argv[1], run).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: oij_cli "
                 "<run|config|trace-gen|trace-info|trace-convert|trace-run> "
                 "...\n");
    return 2;
  }
  const std::string cmd = argv[1];
  argc -= 2;
  argv += 2;
  if (cmd == "run") return CmdRun(argc, argv);
  if (cmd == "config") return CmdConfig(argc, argv);
  if (cmd == "trace-gen") return CmdTraceGen(argc, argv);
  if (cmd == "trace-info") return CmdTraceInfo(argc, argv);
  if (cmd == "trace-convert") return CmdTraceConvert(argc, argv);
  if (cmd == "trace-run") return CmdTraceRun(argc, argv);
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return 2;
}
