#!/usr/bin/env bash
# Smoke-runs every benchmark binary once at a tiny scale. This catches
# bit-rot in the bench harnesses (renamed options, crashed variants,
# stale engine plumbing) without paying for real measurements; numbers
# printed here are meaningless.
#
# Usage: tools/run_bench_smoke.sh [bench-dir]   (default: build/bench)
set -euo pipefail

BENCH_DIR="${1:-build/bench}"
export OIJ_BENCH_SCALE="${OIJ_BENCH_SCALE:-0.05}"
export OIJ_BENCH_THREADS="${OIJ_BENCH_THREADS:-1,2}"

if [ ! -d "$BENCH_DIR" ]; then
  echo "bench dir '$BENCH_DIR' not found" \
       "(configure with -DOIJ_BUILD_BENCHMARKS=ON and build)" >&2
  exit 1
fi

status=0
ran=0
for bin in "$BENCH_DIR"/bench_*; do
  [ -x "$bin" ] && [ -f "$bin" ] || continue
  name="$(basename "$bin")"
  echo "=== smoke: $name (scale=$OIJ_BENCH_SCALE threads=$OIJ_BENCH_THREADS) ==="
  case "$name" in
    # google-benchmark harnesses: force one minimal repetition. The
    # packaged benchmark library predates the "<N>x" min-time syntax,
    # so pass a small double instead.
    bench_micro_structures|bench_wire_codec|bench_wal_append)
      args=(--benchmark_min_time=0.01)
      ;;
    # figure/table harnesses: one repetition by construction, sized by
    # OIJ_BENCH_SCALE / OIJ_BENCH_THREADS.
    *)
      args=()
      ;;
  esac
  if ! "$bin" "${args[@]}"; then
    echo "FAILED: $name" >&2
    status=1
  fi
  ran=$((ran + 1))
done

if [ "$ran" -eq 0 ]; then
  echo "no bench_* binaries found in '$BENCH_DIR'" >&2
  exit 1
fi
echo "bench smoke: $ran binaries, status=$status"
exit $status
