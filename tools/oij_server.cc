// Network front end: serves one join run behind a TCP port.
//
//   oij_server [flags]
//     --workload <preset|config>   query window/lateness source (default:
//                                  the "default" preset)
//     --sql "<query>"              compile the query from SQL instead
//     --engine <name>              key-oij|scale-oij|split-join|
//                                  openmldb-like|handshake (default scale-oij)
//     --joiners <n>                joiner threads (default 4)
//     --batch <n>                  router->joiner transport batch size
//     --emit <eager|watermark>     emit mode (default watermark: exact
//                                  results for any disorder within lateness)
//     --port <n>                   data port (default 0 = ephemeral)
//     --admin-port <n>             admin HTTP port (default 0 = ephemeral)
//     --bind <addr>                bind address (default 127.0.0.1)
//     --wal-dir <dir>              enable durability: per-joiner WAL +
//                                  snapshots under <dir>; on restart the
//                                  server recovers from it before serving
//     --fsync <none|interval|per_batch>
//                                  WAL group-commit policy (default
//                                  interval; per_batch = zero loss)
//     --fsync-interval-us <n>      max us between fsyncs (interval mode)
//     --snapshot-every <n>         snapshot the index every <n> appended
//                                  records (0 = never; log-only recovery)
//     --no-recover                 skip WAL replay on start (fresh run;
//                                  stale state in --wal-dir is discarded)
//     --recover-to-watermark       truncate recovery at the last watermark
//                                  durable on *every* shard, and advertise
//                                  the cut in the hello reply — with
//                                  --fsync per_batch this is what lets a
//                                  router replay the un-acked suffix
//                                  exactly once after kill -9
//     --numa <auto|off>            NUMA placement: auto (default) pins
//                                  joiner teams per socket and binds
//                                  arenas node-locally when >1 node is
//                                  detected; off restores the flat pool
//     --max-subscriber-backlog-mb <n>
//                                  evict a subscriber whose un-flushed
//                                  egress exceeds this (default 64)
//     --wal-short-write-prob <p>   disk-fault harness: probability a WAL
//                                  drain writes only a prefix (test only)
//     --wal-fsync-fail-prob <p>    disk-fault harness: probability an
//                                  fsync silently fails (test only)
//
// Clients speak the wire protocol of src/net/wire_codec.h on the data
// port (oij_loadgen is the reference client). The admin port answers
// GET /metrics, /healthz and /statz; during WAL replay /healthz reports
// 503 "recovering" and data tuples are rejected. SIGINT/SIGTERM drain
// gracefully: the run is finalized (FlushPending + Sync + Finish, so
// every accepted WAL byte reaches disk) and pending summaries are
// flushed before the process exits.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "core/run_summary.h"
#include "server/server.h"
#include "server/signal_stop.h"
#include "sql/binder.h"
#include "stream/presets.h"
#include "stream/workload.h"

namespace {

using namespace oij;

int Usage() {
  std::fprintf(
      stderr,
      "usage: oij_server [--workload <preset|config>] [--sql <query>]\n"
      "                  [--engine <name>] [--joiners <n>] [--batch <n>]\n"
      "                  [--emit <eager|watermark>] [--port <n>]\n"
      "                  [--admin-port <n>] [--bind <addr>]\n"
      "                  [--wal-dir <dir>] [--fsync <none|interval|"
      "per_batch>]\n"
      "                  [--fsync-interval-us <n>] [--snapshot-every <n>]\n"
      "                  [--no-recover] [--recover-to-watermark]\n"
      "                  [--numa <auto|off>]\n"
      "                  [--max-subscriber-backlog-mb <n>]\n");
  return 2;
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

bool ParsePort(const char* arg, uint16_t* out) {
  char* end = nullptr;
  const long v = std::strtol(arg, &end, 10);
  if (end == arg || *end != '\0' || v < 0 || v > 65535) return false;
  *out = static_cast<uint16_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ServerConfig config;
  config.options.num_joiners = 4;
  config.query.emit_mode = EmitMode::kWatermark;
  std::string workload_arg = "default";
  std::string sql;
  // Disk-fault harness knobs; outlives the server (EngineOptions keeps a
  // pointer). Only wired in when a probability is set.
  static FaultInjector disk_faults;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--workload") {
      const char* v = value();
      if (v == nullptr) return Usage();
      workload_arg = v;
    } else if (flag == "--sql") {
      const char* v = value();
      if (v == nullptr) return Usage();
      sql = v;
    } else if (flag == "--engine") {
      const char* v = value();
      if (v == nullptr) return Usage();
      const Status s = EngineKindFromName(v, &config.engine);
      if (!s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 2;
      }
    } else if (flag == "--joiners") {
      const char* v = value();
      if (v == nullptr || std::atoi(v) <= 0) return Usage();
      config.options.num_joiners = static_cast<uint32_t>(std::atoi(v));
    } else if (flag == "--batch") {
      const char* v = value();
      if (v == nullptr || std::atoi(v) <= 0) return Usage();
      config.options.batch_size = static_cast<uint32_t>(std::atoi(v));
    } else if (flag == "--emit") {
      const char* v = value();
      if (v == nullptr) return Usage();
      if (std::string(v) == "eager") {
        config.query.emit_mode = EmitMode::kEager;
      } else if (std::string(v) == "watermark") {
        config.query.emit_mode = EmitMode::kWatermark;
      } else {
        return Usage();
      }
    } else if (flag == "--port") {
      const char* v = value();
      if (v == nullptr || !ParsePort(v, &config.data_port)) return Usage();
    } else if (flag == "--admin-port") {
      const char* v = value();
      if (v == nullptr || !ParsePort(v, &config.admin_port)) return Usage();
    } else if (flag == "--bind") {
      const char* v = value();
      if (v == nullptr) return Usage();
      config.bind_address = v;
    } else if (flag == "--wal-dir") {
      const char* v = value();
      if (v == nullptr || *v == '\0') return Usage();
      config.options.durability.wal_dir = v;
    } else if (flag == "--fsync") {
      const char* v = value();
      if (v == nullptr) return Usage();
      const Status s =
          FsyncPolicyFromName(v, &config.options.durability.fsync);
      if (!s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 2;
      }
    } else if (flag == "--fsync-interval-us") {
      const char* v = value();
      if (v == nullptr || std::atoll(v) <= 0) return Usage();
      config.options.durability.fsync_interval_us = std::atoll(v);
    } else if (flag == "--snapshot-every") {
      const char* v = value();
      if (v == nullptr || std::atoll(v) < 0) return Usage();
      config.options.durability.snapshot_interval_records =
          static_cast<uint64_t>(std::atoll(v));
    } else if (flag == "--numa") {
      const char* v = value();
      if (v == nullptr) return Usage();
      const Status s = NumaModeFromName(v, &config.options.numa.mode);
      if (!s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 2;
      }
    } else if (flag == "--no-recover") {
      config.recover = false;
    } else if (flag == "--recover-to-watermark") {
      config.options.durability.recover_to_watermark = true;
    } else if (flag == "--max-subscriber-backlog-mb") {
      const char* v = value();
      if (v == nullptr || std::atoll(v) <= 0) return Usage();
      config.max_subscriber_backlog_bytes =
          static_cast<size_t>(std::atoll(v)) << 20;
    } else if (flag == "--wal-short-write-prob") {
      const char* v = value();
      if (v == nullptr) return Usage();
      disk_faults.short_write_probability = std::atof(v);
    } else if (flag == "--wal-fsync-fail-prob") {
      const char* v = value();
      if (v == nullptr) return Usage();
      disk_faults.fsync_failure_probability = std::atof(v);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return Usage();
    }
  }

  if (!sql.empty()) {
    const Status s = CompileQuery(sql, &config.query);
    if (!s.ok()) {
      std::fprintf(stderr, "bad --sql: %s\n", s.ToString().c_str());
      return 2;
    }
    // SQL fixes window/lateness/agg; keep the emit mode chosen above.
    config.query.emit_mode = EmitMode::kWatermark;
    config.workload_name = "sql";
  } else {
    WorkloadSpec workload;
    if (!FindPreset(workload_arg, &workload)) {
      const std::string text = ReadFileOrEmpty(workload_arg);
      if (text.empty()) {
        std::fprintf(stderr, "no such preset or config file: %s\n",
                     workload_arg.c_str());
        return 2;
      }
      const Status s = WorkloadSpecFromConfig(text, &workload);
      if (!s.ok()) {
        std::fprintf(stderr, "bad config %s: %s\n", workload_arg.c_str(),
                     s.ToString().c_str());
        return 2;
      }
    }
    config.query.window = workload.window;
    config.query.lateness_us = workload.lateness_us;
    config.workload_name = workload.name;
  }

  if (disk_faults.InjectsDiskFaults()) {
    config.options.fault_injector = &disk_faults;
  }

  OijServer server(config);
  const std::atomic<bool>* stop = InstallStopSignalHandlers();
  const Status s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("oij_server: engine=%s workload=%s\n",
              std::string(EngineKindName(config.engine)).c_str(),
              config.workload_name.c_str());
  std::printf("data port:  %u\n", server.data_port());
  std::printf("admin port: %u  (GET /metrics /healthz /statz)\n",
              server.admin_port());
  std::fflush(stdout);

  while (!stop->load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "signal received; draining\n");
  server.Shutdown();
  if (server.run_finished()) {
    const RunResult run = server.FinalRun();
    std::printf("%s", SummarizeRun(std::string(EngineKindName(config.engine)),
                                   run)
                          .c_str());
  }
  return 0;
}
