// Load generator / reference client for oij_server.
//
//   oij_loadgen --port <n> [flags]
//     --host <addr>        server address (default 127.0.0.1)
//     --targets <list>     multi-target mode: comma-separated host:port
//                          peers; the workload is split round-robin and
//                          each target gets its own connection with
//                          reconnect + exponential backoff (replaces
//                          --host/--port)
//     --workload <preset|config>  arrival sequence to replay (default:
//                          the "default" preset)
//     --tuples <n>         override the workload's total_tuples
//     --rate <n>           pace to n tuples/s (0 = unthrottled; default:
//                          the workload's pace_rate_per_sec)
//     --wm-every <n>       send a watermark every n tuples (default 1024)
//     --subscribe          stream results back and report their latency
//
// Replays the workload's deterministic arrival sequence over TCP as
// kTuple/kWatermark frames (batched between pacing waits), then sends
// kFinish and waits for the kSummary reply. With --subscribe a reader
// thread decodes the streamed kResult frames and reports client-side
// result latency percentiles alongside the send-side throughput.
//
// Multi-target mode is open-loop: a dead target never stalls the
// stream. Tuples due while a target is down count as that target's
// loss, a batch whose send fails midway counts as in-doubt (the kernel
// may have delivered a prefix, so folding it into "lost" would count
// the delivered tuples twice — once as client loss, once as server
// receipt), reconnect attempts pace out on full-jitter exponential
// backoff, and the final report lists sent/lost/in-doubt/reconnects
// plus latency percentiles per target. Every target upholds
// generated == sent + lost + in_doubt exactly, across any number of
// reconnects; the merged report prints the identity and the run fails
// if it does not hold.

#include <sys/socket.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "cluster/backoff.h"
#include "common/rate_limiter.h"
#include "core/run_summary.h"
#include "metrics/latency_recorder.h"
#include "metrics/throughput.h"
#include "net/socket.h"
#include "net/wire_codec.h"
#include "stream/generator.h"
#include "stream/presets.h"
#include "stream/workload.h"

namespace {

using namespace oij;

int Usage() {
  std::fprintf(
      stderr,
      "usage: oij_loadgen --port <n> [--host <addr>]\n"
      "                   [--targets host:port[,host:port...]]\n"
      "                   [--workload <preset|config>] [--tuples <n>]\n"
      "                   [--rate <n>] [--wm-every <n>] [--subscribe]\n");
  return 2;
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

/// Everything the reader thread learns from the server's reply stream.
struct ReaderReport {
  uint64_t results = 0;
  LatencyRecorder latency;  // emit - arrival stamps carried by results
  std::string summary;
  std::string error;
  bool corrupt = false;
};

void ReadServerStream(int fd, ReaderReport* report) {
  WireDecoder decoder;
  char buf[16384];
  WireFrame frame;
  while (true) {
    const int64_t n = RecvSome(fd, buf, sizeof(buf));
    if (n <= 0) return;  // EOF or socket error: stream is over
    decoder.Feed(buf, static_cast<size_t>(n));
    while (true) {
      const WireDecoder::Result r = decoder.Next(&frame);
      if (r == WireDecoder::Result::kNeedMore) break;
      if (r == WireDecoder::Result::kCorrupt) {
        report->corrupt = true;
        return;
      }
      switch (frame.type) {
        case FrameType::kResult:
          ++report->results;
          if (frame.result.emit_us >= frame.result.arrival_us) {
            report->latency.Record(frame.result.emit_us -
                                   frame.result.arrival_us);
          }
          break;
        case FrameType::kSummary:
          report->summary = frame.text;
          break;
        case FrameType::kError:
          report->error = frame.text;
          break;
        default:
          break;  // client-to-server types are not expected; ignore
      }
    }
  }
}

/// One peer in --targets mode. The four tuple counters partition this
/// slot's share of the workload: generated == sent + lost + in_doubt
/// holds at all times, including across reconnects.
struct Target {
  std::string host;
  uint16_t port = 0;

  uint64_t generated = 0;  ///< tuples this slot's round-robin share produced
  uint64_t sent = 0;       ///< handed to the kernel in full
  uint64_t lost = 0;       ///< never handed to the kernel (target was down)
  /// Batch tuples whose send failed midway: a prefix may have reached
  /// the server, so they are neither sent nor cleanly lost.
  uint64_t in_doubt = 0;
  uint64_t reconnects = 0;  ///< successful reconnects after a drop
  bool summary_ok = false;
  ReaderReport report;
};

bool ParseTargetList(const std::string& list, std::vector<Target>* out) {
  size_t start = 0;
  while (start <= list.size()) {
    const size_t comma = list.find(',', start);
    const std::string spec =
        comma == std::string::npos ? list.substr(start)
                                   : list.substr(start, comma - start);
    Target t;
    const size_t colon = spec.rfind(':');
    if (colon == std::string::npos) {
      t.host = "127.0.0.1";
      const long p = std::atol(spec.c_str());
      if (p <= 0 || p > 65535) return false;
      t.port = static_cast<uint16_t>(p);
    } else {
      t.host = spec.substr(0, colon);
      const long p = std::atol(spec.c_str() + colon + 1);
      if (t.host.empty() || p <= 0 || p > 65535) return false;
      t.port = static_cast<uint16_t>(p);
    }
    out->push_back(std::move(t));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return !out->empty();
}

/// Drives one target with its round-robin share of the workload
/// (tuple index % stride == slot). Open-loop: while the target is down
/// its tuples count as loss and reconnects pace out on backoff; only
/// one reader thread is alive at a time, so `target->report`
/// accumulates across connection incarnations without locking.
void DriveTarget(const WorkloadSpec& workload, size_t slot, size_t stride,
                 uint64_t rate, uint64_t wm_every, bool subscribe,
                 Target* target) {
  constexpr uint64_t kBatchTuples = 256;
  Backoff backoff(100, 3000, 0x851f42d4c957f2dULL + slot);
  RateLimiter limiter(rate);
  WorkloadGenerator gen(workload);
  std::thread reader;
  int fd = -1;
  int64_t next_retry_ms = 0;

  auto now_ms = [] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  };
  auto drop_connection = [&] {
    if (fd >= 0) {
      ::shutdown(fd, SHUT_RDWR);
      if (reader.joinable()) reader.join();
      CloseFd(fd);
      fd = -1;
    }
    next_retry_ms = now_ms() + backoff.NextDelayMs();
  };
  auto try_connect = [&]() -> bool {
    if (fd >= 0) return true;
    if (now_ms() < next_retry_ms) return false;
    int new_fd = -1;
    if (!ConnectTcp(target->host, target->port, &new_fd).ok()) {
      next_retry_ms = now_ms() + backoff.NextDelayMs();
      return false;
    }
    fd = new_fd;
    if (backoff.failures() > 0) ++target->reconnects;
    backoff.Reset();
    reader = std::thread(ReadServerStream, fd, &target->report);
    if (subscribe) {
      std::string sub;
      AppendControlFrame(&sub, FrameType::kSubscribe);
      if (!SendAll(fd, sub.data(), sub.size()).ok()) drop_connection();
    }
    return fd >= 0;
  };
  auto send_batch = [&](std::string* out, uint64_t batch_tuples) {
    if (out->empty()) return;
    if (!try_connect()) {
      // Never handed to the kernel: a clean, exactly-once loss.
      target->lost += batch_tuples;
      out->clear();
      return;
    }
    if (SendAll(fd, out->data(), out->size()).ok()) {
      target->sent += batch_tuples;
    } else {
      // The kernel may have accepted a prefix of the batch before the
      // failure, so the server can still process part of it. Counting
      // the batch as `lost` would double-count that delivered prefix
      // (client loss + server receipt); keep it in its own bucket so
      // sent + lost + in_doubt == generated stays exact across the
      // reconnect.
      target->in_doubt += batch_tuples;
      drop_connection();
    }
    out->clear();
  };

  std::string out;
  StreamEvent ev;
  uint64_t index = 0;
  uint64_t in_batch = 0;
  uint64_t since_wm = 0;
  while (gen.Next(&ev)) {
    const bool mine = index++ % stride == slot;
    if (!mine) continue;
    ++target->generated;
    AppendTupleFrame(&out, ev);
    ++in_batch;
    if (++since_wm >= wm_every) {
      since_wm = 0;
      AppendWatermarkFrame(&out, gen.watermark());
    }
    if (in_batch >= kBatchTuples) {
      if (!limiter.unlimited()) limiter.AcquireBatch(in_batch);
      send_batch(&out, in_batch);
      in_batch = 0;
    }
  }
  if (!limiter.unlimited() && in_batch > 0) limiter.AcquireBatch(in_batch);
  send_batch(&out, in_batch);

  // Finish: one last reconnect window so a briefly-down target still
  // hands back its summary.
  std::string fin;
  AppendControlFrame(&fin, FrameType::kFinish);
  for (int attempt = 0; fd < 0 && attempt < 10; ++attempt) {
    if (!try_connect()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
  if (fd >= 0 && SendAll(fd, fin.data(), fin.size()).ok()) {
    if (reader.joinable()) reader.join();  // until summary + EOF
    CloseFd(fd);
    fd = -1;
    target->summary_ok = !target->report.summary.empty();
  } else {
    drop_connection();
  }
  if (reader.joinable()) reader.join();
  if (fd >= 0) CloseFd(fd);
}

int RunMultiTarget(std::vector<Target>* targets, const WorkloadSpec& workload,
                   uint64_t rate, uint64_t wm_every, bool subscribe) {
  const size_t n = targets->size();
  const uint64_t per_target_rate = rate == 0 ? 0 : (rate + n - 1) / n;
  ThroughputMeter meter;
  meter.Start();
  std::vector<std::thread> drivers;
  drivers.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    drivers.emplace_back(DriveTarget, workload, i, n, per_target_rate,
                         wm_every, subscribe, &(*targets)[i]);
  }
  for (auto& t : drivers) t.join();
  meter.Stop();

  uint64_t generated = 0;
  uint64_t sent = 0;
  uint64_t lost = 0;
  uint64_t in_doubt = 0;
  size_t summaries = 0;
  bool accounting_ok = true;
  for (const Target& t : *targets) {
    generated += t.generated;
    sent += t.sent;
    lost += t.lost;
    in_doubt += t.in_doubt;
    summaries += t.summary_ok ? 1 : 0;
    if (t.generated != t.sent + t.lost + t.in_doubt) {
      accounting_ok = false;
      std::fprintf(stderr,
                   "accounting error at %s:%u: generated=%llu != "
                   "sent=%llu + lost=%llu + in_doubt=%llu\n",
                   t.host.c_str(), t.port,
                   static_cast<unsigned long long>(t.generated),
                   static_cast<unsigned long long>(t.sent),
                   static_cast<unsigned long long>(t.lost),
                   static_cast<unsigned long long>(t.in_doubt));
    }
  }
  meter.AddTuples(sent);
  std::printf("sent %llu tuples to %zu target(s) in %.3f s (%s), "
              "%llu lost\n",
              static_cast<unsigned long long>(sent), n,
              meter.elapsed_seconds(),
              HumanRate(meter.TuplesPerSecond()).c_str(),
              static_cast<unsigned long long>(lost));
  std::printf("totals: generated=%llu sent=%llu lost=%llu in_doubt=%llu\n",
              static_cast<unsigned long long>(generated),
              static_cast<unsigned long long>(sent),
              static_cast<unsigned long long>(lost),
              static_cast<unsigned long long>(in_doubt));
  for (const Target& t : *targets) {
    std::printf("target %s:%u: generated=%llu sent=%llu lost=%llu "
                "in_doubt=%llu reconnects=%llu results=%llu",
                t.host.c_str(), t.port,
                static_cast<unsigned long long>(t.generated),
                static_cast<unsigned long long>(t.sent),
                static_cast<unsigned long long>(t.lost),
                static_cast<unsigned long long>(t.in_doubt),
                static_cast<unsigned long long>(t.reconnects),
                static_cast<unsigned long long>(t.report.results));
    if (subscribe && t.report.results > 0) {
      std::printf(" p50=%s p99=%s",
                  HumanDurationUs(t.report.latency.Percentile(0.50)).c_str(),
                  HumanDurationUs(t.report.latency.Percentile(0.99)).c_str());
    }
    std::printf(" summary=%s\n", t.summary_ok ? "ok" : "missing");
    if (!t.report.error.empty()) {
      std::fprintf(stderr, "target %s:%u error: %s\n", t.host.c_str(),
                   t.port, t.report.error.c_str());
    }
  }
  for (const Target& t : *targets) {
    if (t.summary_ok) {
      std::printf("--- %s:%u summary ---\n%s", t.host.c_str(), t.port,
                  t.report.summary.c_str());
    }
  }
  // Success = every target answered the finish AND the per-target
  // counters partition the generated share exactly; loss alone is
  // reported, not fatal (that is the point of open-loop).
  return summaries == n && accounting_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  bool have_port = false;
  std::vector<Target> targets;
  std::string workload_arg = "default";
  uint64_t tuples_override = 0;
  bool have_tuples = false;
  uint64_t rate = 0;
  bool have_rate = false;
  uint64_t wm_every = 1024;
  bool subscribe = false;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--host") {
      const char* v = value();
      if (v == nullptr) return Usage();
      host = v;
    } else if (flag == "--port") {
      const char* v = value();
      if (v == nullptr) return Usage();
      const long p = std::atol(v);
      if (p <= 0 || p > 65535) return Usage();
      port = static_cast<uint16_t>(p);
      have_port = true;
    } else if (flag == "--targets") {
      const char* v = value();
      if (v == nullptr || !ParseTargetList(v, &targets)) {
        std::fprintf(stderr, "bad --targets list\n");
        return Usage();
      }
    } else if (flag == "--workload") {
      const char* v = value();
      if (v == nullptr) return Usage();
      workload_arg = v;
    } else if (flag == "--tuples") {
      const char* v = value();
      if (v == nullptr || std::atoll(v) <= 0) return Usage();
      tuples_override = static_cast<uint64_t>(std::atoll(v));
      have_tuples = true;
    } else if (flag == "--rate") {
      const char* v = value();
      if (v == nullptr || std::atoll(v) < 0) return Usage();
      rate = static_cast<uint64_t>(std::atoll(v));
      have_rate = true;
    } else if (flag == "--wm-every") {
      const char* v = value();
      if (v == nullptr || std::atoll(v) <= 0) return Usage();
      wm_every = static_cast<uint64_t>(std::atoll(v));
    } else if (flag == "--subscribe") {
      subscribe = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return Usage();
    }
  }
  if (!have_port && targets.empty()) {
    std::fprintf(stderr, "--port or --targets is required\n");
    return Usage();
  }
  if (have_port && !targets.empty()) {
    std::fprintf(stderr, "--port and --targets are mutually exclusive\n");
    return Usage();
  }

  WorkloadSpec workload;
  if (!FindPreset(workload_arg, &workload)) {
    const std::string text = ReadFileOrEmpty(workload_arg);
    if (text.empty()) {
      std::fprintf(stderr, "no such preset or config file: %s\n",
                   workload_arg.c_str());
      return 2;
    }
    const Status s = WorkloadSpecFromConfig(text, &workload);
    if (!s.ok()) {
      std::fprintf(stderr, "bad config %s: %s\n", workload_arg.c_str(),
                   s.ToString().c_str());
      return 2;
    }
  }
  if (have_tuples) workload.total_tuples = tuples_override;
  if (!have_rate) rate = workload.pace_rate_per_sec;

  if (!targets.empty()) {
    return RunMultiTarget(&targets, workload, rate, wm_every, subscribe);
  }

  int fd = -1;
  Status s = ConnectTcp(host, port, &fd);
  if (!s.ok()) {
    std::fprintf(stderr, "connect %s:%u failed: %s\n", host.c_str(), port,
                 s.ToString().c_str());
    return 1;
  }

  ReaderReport report;
  std::thread reader(ReadServerStream, fd, &report);

  std::string out;
  if (subscribe) AppendControlFrame(&out, FrameType::kSubscribe);

  // Batch frames between pacing waits: one send per batch keeps the
  // syscall rate reasonable at millions of tuples/s, while AcquireBatch
  // preserves the requested average rate.
  constexpr uint64_t kBatchTuples = 256;
  RateLimiter limiter(rate);
  WorkloadGenerator gen(workload);
  ThroughputMeter meter;
  meter.Start();

  StreamEvent ev;
  uint64_t sent = 0;
  uint64_t since_wm = 0;
  uint64_t in_batch = 0;
  bool io_ok = true;
  while (gen.Next(&ev)) {
    AppendTupleFrame(&out, ev);
    ++sent;
    if (++since_wm >= wm_every) {
      since_wm = 0;
      AppendWatermarkFrame(&out, gen.watermark());
    }
    if (++in_batch >= kBatchTuples) {
      if (!limiter.unlimited()) limiter.AcquireBatch(in_batch);
      s = SendAll(fd, out.data(), out.size());
      if (!s.ok()) {
        io_ok = false;
        break;
      }
      out.clear();
      in_batch = 0;
    }
  }
  if (io_ok) {
    AppendControlFrame(&out, FrameType::kFinish);
    s = SendAll(fd, out.data(), out.size());
    if (!s.ok()) io_ok = false;
  }
  meter.Stop();
  meter.AddTuples(sent);

  reader.join();
  CloseFd(fd);

  if (!report.error.empty()) {
    std::fprintf(stderr, "server error: %s\n", report.error.c_str());
    return 1;
  }
  if (report.corrupt) {
    std::fprintf(stderr, "server sent a malformed frame\n");
    return 1;
  }
  if (!io_ok) {
    std::fprintf(stderr, "send failed: %s\n", s.ToString().c_str());
    return 1;
  }
  if (report.summary.empty()) {
    std::fprintf(stderr, "connection closed before the run summary\n");
    return 1;
  }

  std::printf("sent %llu tuples in %.3f s (%s)\n",
              static_cast<unsigned long long>(sent), meter.elapsed_seconds(),
              HumanRate(meter.TuplesPerSecond()).c_str());
  if (subscribe) {
    std::printf("received %llu results; client-observed latency p50=%s "
                "p99=%s max=%s\n",
                static_cast<unsigned long long>(report.results),
                HumanDurationUs(report.latency.Percentile(0.50)).c_str(),
                HumanDurationUs(report.latency.Percentile(0.99)).c_str(),
                HumanDurationUs(static_cast<double>(report.latency.max_us()))
                    .c_str());
  }
  std::printf("--- server summary ---\n%s", report.summary.c_str());
  return 0;
}
