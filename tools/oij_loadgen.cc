// Load generator / reference client for oij_server.
//
//   oij_loadgen --port <n> [flags]
//     --host <addr>        server address (default 127.0.0.1)
//     --workload <preset|config>  arrival sequence to replay (default:
//                          the "default" preset)
//     --tuples <n>         override the workload's total_tuples
//     --rate <n>           pace to n tuples/s (0 = unthrottled; default:
//                          the workload's pace_rate_per_sec)
//     --wm-every <n>       send a watermark every n tuples (default 1024)
//     --subscribe          stream results back and report their latency
//
// Replays the workload's deterministic arrival sequence over TCP as
// kTuple/kWatermark frames (batched between pacing waits), then sends
// kFinish and waits for the kSummary reply. With --subscribe a reader
// thread decodes the streamed kResult frames and reports client-side
// result latency percentiles alongside the send-side throughput.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "common/rate_limiter.h"
#include "core/run_summary.h"
#include "metrics/latency_recorder.h"
#include "metrics/throughput.h"
#include "net/socket.h"
#include "net/wire_codec.h"
#include "stream/generator.h"
#include "stream/presets.h"
#include "stream/workload.h"

namespace {

using namespace oij;

int Usage() {
  std::fprintf(
      stderr,
      "usage: oij_loadgen --port <n> [--host <addr>]\n"
      "                   [--workload <preset|config>] [--tuples <n>]\n"
      "                   [--rate <n>] [--wm-every <n>] [--subscribe]\n");
  return 2;
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

/// Everything the reader thread learns from the server's reply stream.
struct ReaderReport {
  uint64_t results = 0;
  LatencyRecorder latency;  // emit - arrival stamps carried by results
  std::string summary;
  std::string error;
  bool corrupt = false;
};

void ReadServerStream(int fd, ReaderReport* report) {
  WireDecoder decoder;
  char buf[16384];
  WireFrame frame;
  while (true) {
    const int64_t n = RecvSome(fd, buf, sizeof(buf));
    if (n <= 0) return;  // EOF or socket error: stream is over
    decoder.Feed(buf, static_cast<size_t>(n));
    while (true) {
      const WireDecoder::Result r = decoder.Next(&frame);
      if (r == WireDecoder::Result::kNeedMore) break;
      if (r == WireDecoder::Result::kCorrupt) {
        report->corrupt = true;
        return;
      }
      switch (frame.type) {
        case FrameType::kResult:
          ++report->results;
          if (frame.result.emit_us >= frame.result.arrival_us) {
            report->latency.Record(frame.result.emit_us -
                                   frame.result.arrival_us);
          }
          break;
        case FrameType::kSummary:
          report->summary = frame.text;
          break;
        case FrameType::kError:
          report->error = frame.text;
          break;
        default:
          break;  // client-to-server types are not expected; ignore
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  bool have_port = false;
  std::string workload_arg = "default";
  uint64_t tuples_override = 0;
  bool have_tuples = false;
  uint64_t rate = 0;
  bool have_rate = false;
  uint64_t wm_every = 1024;
  bool subscribe = false;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--host") {
      const char* v = value();
      if (v == nullptr) return Usage();
      host = v;
    } else if (flag == "--port") {
      const char* v = value();
      if (v == nullptr) return Usage();
      const long p = std::atol(v);
      if (p <= 0 || p > 65535) return Usage();
      port = static_cast<uint16_t>(p);
      have_port = true;
    } else if (flag == "--workload") {
      const char* v = value();
      if (v == nullptr) return Usage();
      workload_arg = v;
    } else if (flag == "--tuples") {
      const char* v = value();
      if (v == nullptr || std::atoll(v) <= 0) return Usage();
      tuples_override = static_cast<uint64_t>(std::atoll(v));
      have_tuples = true;
    } else if (flag == "--rate") {
      const char* v = value();
      if (v == nullptr || std::atoll(v) < 0) return Usage();
      rate = static_cast<uint64_t>(std::atoll(v));
      have_rate = true;
    } else if (flag == "--wm-every") {
      const char* v = value();
      if (v == nullptr || std::atoll(v) <= 0) return Usage();
      wm_every = static_cast<uint64_t>(std::atoll(v));
    } else if (flag == "--subscribe") {
      subscribe = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return Usage();
    }
  }
  if (!have_port) {
    std::fprintf(stderr, "--port is required\n");
    return Usage();
  }

  WorkloadSpec workload;
  if (!FindPreset(workload_arg, &workload)) {
    const std::string text = ReadFileOrEmpty(workload_arg);
    if (text.empty()) {
      std::fprintf(stderr, "no such preset or config file: %s\n",
                   workload_arg.c_str());
      return 2;
    }
    const Status s = WorkloadSpecFromConfig(text, &workload);
    if (!s.ok()) {
      std::fprintf(stderr, "bad config %s: %s\n", workload_arg.c_str(),
                   s.ToString().c_str());
      return 2;
    }
  }
  if (have_tuples) workload.total_tuples = tuples_override;
  if (!have_rate) rate = workload.pace_rate_per_sec;

  int fd = -1;
  Status s = ConnectTcp(host, port, &fd);
  if (!s.ok()) {
    std::fprintf(stderr, "connect %s:%u failed: %s\n", host.c_str(), port,
                 s.ToString().c_str());
    return 1;
  }

  ReaderReport report;
  std::thread reader(ReadServerStream, fd, &report);

  std::string out;
  if (subscribe) AppendControlFrame(&out, FrameType::kSubscribe);

  // Batch frames between pacing waits: one send per batch keeps the
  // syscall rate reasonable at millions of tuples/s, while AcquireBatch
  // preserves the requested average rate.
  constexpr uint64_t kBatchTuples = 256;
  RateLimiter limiter(rate);
  WorkloadGenerator gen(workload);
  ThroughputMeter meter;
  meter.Start();

  StreamEvent ev;
  uint64_t sent = 0;
  uint64_t since_wm = 0;
  uint64_t in_batch = 0;
  bool io_ok = true;
  while (gen.Next(&ev)) {
    AppendTupleFrame(&out, ev);
    ++sent;
    if (++since_wm >= wm_every) {
      since_wm = 0;
      AppendWatermarkFrame(&out, gen.watermark());
    }
    if (++in_batch >= kBatchTuples) {
      if (!limiter.unlimited()) limiter.AcquireBatch(in_batch);
      s = SendAll(fd, out.data(), out.size());
      if (!s.ok()) {
        io_ok = false;
        break;
      }
      out.clear();
      in_batch = 0;
    }
  }
  if (io_ok) {
    AppendControlFrame(&out, FrameType::kFinish);
    s = SendAll(fd, out.data(), out.size());
    if (!s.ok()) io_ok = false;
  }
  meter.Stop();
  meter.AddTuples(sent);

  reader.join();
  CloseFd(fd);

  if (!report.error.empty()) {
    std::fprintf(stderr, "server error: %s\n", report.error.c_str());
    return 1;
  }
  if (report.corrupt) {
    std::fprintf(stderr, "server sent a malformed frame\n");
    return 1;
  }
  if (!io_ok) {
    std::fprintf(stderr, "send failed: %s\n", s.ToString().c_str());
    return 1;
  }
  if (report.summary.empty()) {
    std::fprintf(stderr, "connection closed before the run summary\n");
    return 1;
  }

  std::printf("sent %llu tuples in %.3f s (%s)\n",
              static_cast<unsigned long long>(sent), meter.elapsed_seconds(),
              HumanRate(meter.TuplesPerSecond()).c_str());
  if (subscribe) {
    std::printf("received %llu results; client-observed latency p50=%s "
                "p99=%s max=%s\n",
                static_cast<unsigned long long>(report.results),
                HumanDurationUs(report.latency.Percentile(0.50)).c_str(),
                HumanDurationUs(report.latency.Percentile(0.99)).c_str(),
                HumanDurationUs(static_cast<double>(report.latency.max_us()))
                    .c_str());
  }
  std::printf("--- server summary ---\n%s", report.summary.c_str());
  return 0;
}
